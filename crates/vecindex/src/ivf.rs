//! Inverted-file (IVF) approximate cosine index.
//!
//! A coarse k-means quantizer partitions the vectors into `nlist` cells;
//! search probes the `nprobe` nearest cells. This reproduces the recall /
//! latency trade-off of Faiss's `IndexIVFFlat`, which the paper uses to make
//! first-stage retrieval "efficient similarity search" over the large
//! dialect set.

use crate::flat::{dot, nan_last_desc, normalize, partition, Hit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reusable per-worker scratch for IVF searches: the normalized query, the
/// centroid ranking, and the probed-candidate buffer all keep their
/// capacity across queries, so a batched probe allocates only its outputs.
#[derive(Debug, Default)]
struct IvfScratch {
    q: Vec<f32>,
    cell_scores: Vec<(usize, f32)>,
    hits: Vec<Hit>,
}

/// IVF index configuration.
#[derive(Debug, Clone, Copy)]
pub struct IvfConfig {
    /// Number of coarse cells.
    pub nlist: usize,
    /// Cells probed at search time.
    pub nprobe: usize,
    /// k-means iterations during training.
    pub train_iters: usize,
    /// RNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig {
            nlist: 64,
            nprobe: 8,
            train_iters: 10,
            seed: 13,
        }
    }
}

/// Approximate cosine index with a k-means coarse quantizer.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    config: IvfConfig,
    centroids: Vec<f32>,
    // Per cell: (id, normalized vector) pairs flattened.
    cells: Vec<Vec<(usize, Vec<f32>)>>,
    trained: bool,
}

impl IvfIndex {
    /// An untrained index.
    pub fn new(dim: usize, config: IvfConfig) -> Self {
        IvfIndex {
            dim,
            config,
            centroids: Vec::new(),
            cells: Vec::new(),
            trained: false,
        }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// `true` when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` after [`IvfIndex::train`].
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Train the coarse quantizer on (a sample of) the corpus.
    pub fn train(&mut self, sample: &[Vec<f32>]) {
        assert!(!sample.is_empty(), "cannot train on an empty sample");
        let nlist = self.config.nlist.min(sample.len()).max(1);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Normalize the training sample.
        let normed: Vec<Vec<f32>> = sample
            .iter()
            .map(|v| {
                let mut x = v.clone();
                normalize(&mut x);
                x
            })
            .collect();

        // Random init.
        let mut centroids: Vec<Vec<f32>> = (0..nlist)
            .map(|_| normed[rng.random_range(0..normed.len())].clone())
            .collect();

        for _ in 0..self.config.train_iters {
            let mut sums = vec![vec![0.0f32; self.dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for v in &normed {
                let c = nearest_centroid(&centroids, v);
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(v.iter()) {
                    *s += x;
                }
            }
            for (c, centroid) in centroids.iter_mut().enumerate() {
                if counts[c] > 0 {
                    *centroid = sums[c].clone();
                    normalize(centroid);
                } else {
                    // Re-seed an empty cell.
                    *centroid = normed[rng.random_range(0..normed.len())].clone();
                }
            }
        }

        self.centroids = centroids.concat();
        self.cells = vec![Vec::new(); nlist];
        self.trained = true;
    }

    fn nlist(&self) -> usize {
        self.cells.len()
    }

    fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Add a vector (requires training). Panics if untrained — that is an
    /// API misuse, matching Faiss behaviour.
    pub fn add(&mut self, id: usize, v: &[f32]) {
        assert!(self.trained, "IvfIndex::add before train");
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        let mut x = v.to_vec();
        normalize(&mut x);
        let cents: Vec<&[f32]> = (0..self.nlist()).map(|c| self.centroid(c)).collect();
        let c = nearest_centroid_slices(&cents, &x);
        self.cells[c].push((id, x));
    }

    /// Add a batch of vectors, id `ids[i]` for `vecs[i]`, parallelizing
    /// the normalize + nearest-centroid assignment across `threads` scoped
    /// workers. Assignment is a pure per-vector function of the trained
    /// centroids, and the assigned vectors are inserted into their cells
    /// sequentially in input order afterwards, so the resulting index is
    /// bit-identical to calling [`IvfIndex::add`] per pair in order, for
    /// any thread count. Panics if untrained or on shape mismatch.
    pub fn add_batch(&mut self, ids: &[usize], vecs: &[Vec<f32>], threads: usize) {
        assert!(self.trained, "IvfIndex::add before train");
        assert_eq!(ids.len(), vecs.len(), "ids/vectors length mismatch");
        for v in vecs {
            assert_eq!(v.len(), self.dim, "dimension mismatch");
        }
        if vecs.is_empty() {
            return;
        }
        let cents: Vec<&[f32]> = (0..self.nlist()).map(|c| self.centroid(c)).collect();
        let assign = |v: &Vec<f32>| {
            let mut x = v.clone();
            normalize(&mut x);
            let c = nearest_centroid_slices(&cents, &x);
            (c, x)
        };
        let threads = threads.clamp(1, vecs.len());
        let assigned: Vec<(usize, Vec<f32>)> = if threads == 1 {
            vecs.iter().map(assign).collect()
        } else {
            let mut slots: Vec<Option<(usize, Vec<f32>)>> = vec![None; vecs.len()];
            std::thread::scope(|scope| {
                let assign = &assign;
                let mut rest = slots.as_mut_slice();
                for range in partition(vecs.len(), threads) {
                    let (chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    let vs = &vecs[range];
                    scope.spawn(move || {
                        for (slot, v) in chunk.iter_mut().zip(vs) {
                            *slot = Some(assign(v));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("add_batch worker skipped a slot"))
                .collect()
        };
        drop(cents);
        for (id, (c, x)) in ids.iter().zip(assigned) {
            self.cells[c].push((*id, x));
        }
    }

    /// Top-k approximate search over the `nprobe` nearest cells. `k = 0`
    /// returns an empty vec without allocating; `k > len` returns every
    /// probed hit sorted.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.search_with(query, k, &mut IvfScratch::default())
    }

    /// Batched top-k approximate search: one result list per query, each
    /// bit-identical in ids and ordering to [`IvfIndex::search`] on the
    /// same query. Worker count defaults to the available parallelism.
    pub fn search_batch(&self, queries: &[Vec<f32>], k: usize) -> Vec<Vec<Hit>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.search_batch_threads(queries, k, threads)
    }

    /// [`IvfIndex::search_batch`] with an explicit worker count. Queries are
    /// chunk-balanced across scoped worker threads; each worker probes with
    /// its own reused [`IvfScratch`], so results are independent of the
    /// worker count by construction.
    pub fn search_batch_threads(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<Hit>> {
        assert!(self.trained, "IvfIndex::search before train");
        if queries.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<Vec<Hit>> = vec![Vec::new(); queries.len()];
        let threads = threads.clamp(1, queries.len());
        if threads == 1 || k == 0 {
            let mut scratch = IvfScratch::default();
            for (slot, q) in out.iter_mut().zip(queries) {
                *slot = self.search_with(q, k, &mut scratch);
            }
            return out;
        }
        std::thread::scope(|scope| {
            let mut out_rest = out.as_mut_slice();
            let mut q_rest = queries;
            for range in partition(queries.len(), threads) {
                let (slots, rest) = out_rest.split_at_mut(range.len());
                let (qs, qrest) = q_rest.split_at(range.len());
                out_rest = rest;
                q_rest = qrest;
                scope.spawn(move || {
                    let mut scratch = IvfScratch::default();
                    for (slot, q) in slots.iter_mut().zip(qs) {
                        *slot = self.search_with(q, k, &mut scratch);
                    }
                });
            }
        });
        out
    }

    fn search_with(&self, query: &[f32], k: usize, scratch: &mut IvfScratch) -> Vec<Hit> {
        assert!(self.trained, "IvfIndex::search before train");
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        scratch.q.clear();
        scratch.q.extend_from_slice(query);
        normalize(&mut scratch.q);
        let q = &scratch.q;

        // Rank cells by centroid similarity.
        scratch.cell_scores.clear();
        scratch
            .cell_scores
            .extend((0..self.nlist()).map(|c| (c, dot(self.centroid(c), q))));
        scratch
            .cell_scores
            .sort_by(|a, b| nan_last_desc(a.1, b.1));

        scratch.hits.clear();
        for &(c, _) in scratch.cell_scores.iter().take(self.config.nprobe.max(1)) {
            for (id, v) in &self.cells[c] {
                scratch.hits.push(Hit {
                    id: *id,
                    score: dot(v, q),
                });
            }
        }
        scratch
            .hits
            .sort_by(|a, b| nan_last_desc(a.score, b.score));
        scratch.hits.iter().take(k).copied().collect()
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_score = f32::NEG_INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let s = dot(c, v);
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

fn nearest_centroid_slices(centroids: &[&[f32]], v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_score = f32::NEG_INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let s = dot(c, v);
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_corpus(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn exact_when_probing_all_cells() {
        let corpus = random_corpus(300, 16, 1);
        let mut ivf = IvfIndex::new(
            16,
            IvfConfig {
                nlist: 8,
                nprobe: 8,
                ..IvfConfig::default()
            },
        );
        ivf.train(&corpus);
        let mut flat = FlatIndex::new(16);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
            flat.add(i, v);
        }
        let q = &corpus[42];
        let a = ivf.search(q, 5);
        let b = flat.search(q, 5);
        assert_eq!(
            a.iter().map(|h| h.id).collect::<Vec<_>>(),
            b.iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn high_recall_with_partial_probe() {
        let corpus = random_corpus(1000, 16, 2);
        let mut ivf = IvfIndex::new(
            16,
            IvfConfig {
                nlist: 16,
                nprobe: 6,
                ..IvfConfig::default()
            },
        );
        ivf.train(&corpus);
        let mut flat = FlatIndex::new(16);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
            flat.add(i, v);
        }
        // Recall@10 over 20 queries should be decent.
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q = &corpus[rng.random_range(0..corpus.len())];
            let approx: Vec<usize> = ivf.search(q, 10).iter().map(|h| h.id).collect();
            let exact: Vec<usize> = flat.search(q, 10).iter().map(|h| h.id).collect();
            total += exact.len();
            hits += exact.iter().filter(|i| approx.contains(i)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.6, "recall too low: {recall}");
    }

    #[test]
    #[should_panic(expected = "before train")]
    fn add_requires_training() {
        let mut ivf = IvfIndex::new(4, IvfConfig::default());
        ivf.add(0, &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn k_zero_returns_empty_without_allocating() {
        let corpus = random_corpus(50, 8, 5);
        let mut ivf = IvfIndex::new(8, IvfConfig::default());
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        let hits = ivf.search(&corpus[0], 0);
        assert!(hits.is_empty());
        assert_eq!(hits.capacity(), 0);
    }

    #[test]
    fn k_larger_than_len_returns_all_probed_sorted() {
        let corpus = random_corpus(30, 8, 6);
        let mut ivf = IvfIndex::new(
            8,
            IvfConfig {
                nlist: 4,
                nprobe: 4,
                ..IvfConfig::default()
            },
        );
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        let hits = ivf.search(&corpus[0], 10_000);
        assert_eq!(hits.len(), 30); // full probe: every vector comes back
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn search_batch_matches_sequential_search() {
        let corpus = random_corpus(400, 16, 7);
        let mut ivf = IvfIndex::new(
            16,
            IvfConfig {
                nlist: 8,
                nprobe: 3,
                ..IvfConfig::default()
            },
        );
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        let queries: Vec<Vec<f32>> = corpus[..13].to_vec();
        for threads in [1, 4] {
            let batch = ivf.search_batch_threads(&queries, 10, threads);
            for (q, b) in queries.iter().zip(&batch) {
                let seq = ivf.search(q, 10);
                assert_eq!(seq.len(), b.len());
                for (x, y) in seq.iter().zip(b) {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn nan_candidates_sort_after_finite_hits() {
        // Unlike the flat index (whose top-k admission drops NaN scores),
        // IVF merges per-cell lists and can carry NaN-scored entries; the
        // total-order sort must keep every finite hit ahead of them.
        let corpus = random_corpus(120, 8, 9);
        let mut ivf = IvfIndex::new(
            8,
            IvfConfig {
                nlist: 4,
                nprobe: 4,
                ..IvfConfig::default()
            },
        );
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        for j in 0..3 {
            ivf.add(900 + j, &[f32::NAN; 8]);
        }
        let hits = ivf.search(&corpus[7], 123);
        let first_nan = hits
            .iter()
            .position(|h| h.score.is_nan())
            .unwrap_or(hits.len());
        for h in &hits[..first_nan] {
            assert!(!h.score.is_nan());
        }
        for h in &hits[first_nan..] {
            assert!(h.score.is_nan(), "finite hit sorted after a NaN hit");
        }
        for w in hits[..first_nan].windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn add_batch_is_bit_identical_to_sequential_add() {
        let corpus = random_corpus(317, 16, 12);
        let ids: Vec<usize> = (0..corpus.len()).map(|i| i + 100).collect();
        let cfg = IvfConfig {
            nlist: 8,
            nprobe: 3,
            ..IvfConfig::default()
        };
        let mut seq = IvfIndex::new(16, cfg);
        seq.train(&corpus);
        for (id, v) in ids.iter().zip(&corpus) {
            seq.add(*id, v);
        }
        for threads in [1usize, 3, 8] {
            let mut par = IvfIndex::new(16, cfg);
            par.train(&corpus);
            par.add_batch(&ids, &corpus, threads);
            assert_eq!(par.len(), seq.len());
            // Cell contents must match exactly: same ids, same vector bits,
            // same within-cell insertion order.
            for (a, b) in seq.cells.iter().zip(&par.cells) {
                assert_eq!(a.len(), b.len());
                for ((ia, va), (ib, vb)) in a.iter().zip(b) {
                    assert_eq!(ia, ib);
                    for (x, y) in va.iter().zip(vb) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
            for q in corpus.iter().take(5) {
                let a = seq.search(q, 10);
                let b = par.search(q, 10);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
        // Degenerate batch shapes.
        let mut par = IvfIndex::new(16, cfg);
        par.train(&corpus);
        par.add_batch(&[], &[], 4);
        assert!(par.is_empty());
    }

    #[test]
    fn small_corpus_clamps_nlist() {
        let corpus = random_corpus(5, 4, 4);
        let mut ivf = IvfIndex::new(4, IvfConfig::default());
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        assert_eq!(ivf.len(), 5);
        assert!(!ivf.search(&corpus[0], 3).is_empty());
    }
}
