//! Inverted-file (IVF) approximate cosine index.
//!
//! A coarse k-means quantizer partitions the vectors into `nlist` cells;
//! search probes the `nprobe` nearest cells. This reproduces the recall /
//! latency trade-off of Faiss's `IndexIVFFlat`, which the paper uses to make
//! first-stage retrieval "efficient similarity search" over the large
//! dialect set.

use crate::flat::{dot, nan_last_desc, normalize, partition, Hit};
use crate::index_metrics;
use crate::quant::{dot_i8, QuantParams};
use gar_obs::StageTimer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Reusable per-worker scratch for IVF searches: the normalized query, the
/// centroid ranking, and the probed-candidate buffers all keep their
/// capacity across queries, so a batched probe allocates only its outputs.
#[derive(Debug, Default)]
struct IvfScratch {
    q: Vec<f32>,
    /// Quantized copy of the normalized query (quantized searches only).
    qq: Vec<i8>,
    cell_scores: Vec<(usize, f32)>,
    hits: Vec<Hit>,
    /// Approximate-pass survivors: `(approx_score, cell, row)`.
    approx: Vec<(f32, usize, usize)>,
}

/// One inverted list: ids plus contiguous `dim`-strided normalized rows,
/// an int8 sidecar (quantized indices only), and tombstone flags. The
/// contiguous layout replaces the old per-entry `Vec<f32>` so a probe
/// streams one allocation per cell instead of chasing a pointer per row.
#[derive(Debug, Clone, Default)]
struct Cell {
    ids: Vec<usize>,
    data: Vec<f32>,
    qdata: Vec<i8>,
    dead: Vec<bool>,
}

impl Cell {
    fn row<'a>(&'a self, i: usize, dim: usize) -> &'a [f32] {
        &self.data[i * dim..(i + 1) * dim]
    }

    fn qrow<'a>(&'a self, i: usize, dim: usize) -> &'a [i8] {
        &self.qdata[i * dim..(i + 1) * dim]
    }

    /// Append a normalized row, quantizing into the sidecar when asked.
    fn push(&mut self, id: usize, x: &[f32], quantize: Option<QuantParams>) {
        self.ids.push(id);
        self.data.extend_from_slice(x);
        if let Some(p) = quantize {
            p.quantize_append(x, &mut self.qdata);
        }
        self.dead.push(false);
    }

    /// Drop tombstoned rows in place, preserving survivor order
    /// (bit-copies only). Returns the number of rows reclaimed.
    fn compact(&mut self, dim: usize, quantized: bool) -> usize {
        let mut w = 0;
        for r in 0..self.ids.len() {
            if self.dead[r] {
                continue;
            }
            if w != r {
                self.ids[w] = self.ids[r];
                if dim > 0 {
                    self.data.copy_within(r * dim..(r + 1) * dim, w * dim);
                    if quantized {
                        self.qdata.copy_within(r * dim..(r + 1) * dim, w * dim);
                    }
                }
            }
            w += 1;
        }
        let removed = self.ids.len() - w;
        self.ids.truncate(w);
        self.data.truncate(w * dim);
        if quantized {
            self.qdata.truncate(w * dim);
        }
        self.dead.clear();
        self.dead.resize(w, false);
        removed
    }
}

/// IVF index configuration.
#[derive(Debug, Clone, Copy)]
pub struct IvfConfig {
    /// Number of coarse cells.
    pub nlist: usize,
    /// Cells probed at search time.
    pub nprobe: usize,
    /// k-means iterations during training.
    pub train_iters: usize,
    /// RNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig {
            nlist: 64,
            nprobe: 8,
            train_iters: 10,
            seed: 13,
        }
    }
}

/// Approximate cosine index with a k-means coarse quantizer. Supports the
/// same optional layers as [`crate::FlatIndex`]: an int8 sidecar per cell
/// with f32 rescoring of the approximate survivors
/// ([`IvfIndex::search_quantized`]), and tombstoned removal with automatic
/// compaction ([`IvfIndex::remove`]).
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    config: IvfConfig,
    centroids: Vec<f32>,
    cells: Vec<Cell>,
    trained: bool,
    quantized: bool,
    qparams: QuantParams,
    dead_count: usize,
}

impl IvfIndex {
    /// An untrained index.
    pub fn new(dim: usize, config: IvfConfig) -> Self {
        IvfIndex {
            dim,
            config,
            centroids: Vec::new(),
            cells: Vec::new(),
            trained: false,
            quantized: false,
            qparams: QuantParams::unit(),
            dead_count: 0,
        }
    }

    /// An untrained int8-quantized index: every added row also gets an i8
    /// sidecar copy in its cell for [`IvfIndex::search_quantized`].
    pub fn quantized(dim: usize, config: IvfConfig) -> Self {
        IvfIndex {
            quantized: true,
            ..IvfIndex::new(dim, config)
        }
    }

    /// `true` when cells carry the int8 sidecar.
    pub fn is_quantized(&self) -> bool {
        self.quantized
    }

    /// Number of stored rows, live and tombstoned.
    pub fn len(&self) -> usize {
        self.cells.iter().map(|c| c.ids.len()).sum()
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_len(&self) -> usize {
        self.len() - self.dead_count
    }

    /// Number of tombstoned rows awaiting compaction.
    pub fn tombstones(&self) -> usize {
        self.dead_count
    }

    /// `true` when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` after [`IvfIndex::train`].
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Train the coarse quantizer on (a sample of) the corpus.
    pub fn train(&mut self, sample: &[Vec<f32>]) {
        assert!(!sample.is_empty(), "cannot train on an empty sample");
        let nlist = self.config.nlist.min(sample.len()).max(1);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Normalize the training sample.
        let normed: Vec<Vec<f32>> = sample
            .iter()
            .map(|v| {
                let mut x = v.clone();
                normalize(&mut x);
                x
            })
            .collect();

        // Random init.
        let mut centroids: Vec<Vec<f32>> = (0..nlist)
            .map(|_| normed[rng.random_range(0..normed.len())].clone())
            .collect();

        for _ in 0..self.config.train_iters {
            let mut sums = vec![vec![0.0f32; self.dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for v in &normed {
                let c = nearest_centroid(&centroids, v);
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(v.iter()) {
                    *s += x;
                }
            }
            for (c, centroid) in centroids.iter_mut().enumerate() {
                if counts[c] > 0 {
                    *centroid = sums[c].clone();
                    normalize(centroid);
                } else {
                    // Re-seed an empty cell.
                    *centroid = normed[rng.random_range(0..normed.len())].clone();
                }
            }
        }

        self.centroids = centroids.concat();
        self.cells = vec![Cell::default(); nlist];
        self.dead_count = 0;
        self.trained = true;
    }

    fn nlist(&self) -> usize {
        self.cells.len()
    }

    fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Add a vector (requires training). Panics if untrained — that is an
    /// API misuse, matching Faiss behaviour.
    pub fn add(&mut self, id: usize, v: &[f32]) {
        assert!(self.trained, "IvfIndex::add before train");
        assert_eq!(
            v.len(),
            self.dim,
            "dimension mismatch: index expects {}-d vectors, got {}-d",
            self.dim,
            v.len()
        );
        let mut x = v.to_vec();
        normalize(&mut x);
        let cents: Vec<&[f32]> = (0..self.nlist()).map(|c| self.centroid(c)).collect();
        let c = nearest_centroid_slices(&cents, &x);
        let quantize = self.quantized.then_some(self.qparams);
        self.cells[c].push(id, &x, quantize);
    }

    /// Add a batch of vectors, id `ids[i]` for `vecs[i]`, parallelizing
    /// the normalize + nearest-centroid assignment across `threads` scoped
    /// workers. Assignment is a pure per-vector function of the trained
    /// centroids, and the assigned vectors are inserted into their cells
    /// sequentially in input order afterwards, so the resulting index is
    /// bit-identical to calling [`IvfIndex::add`] per pair in order, for
    /// any thread count. Panics if untrained or on shape mismatch.
    pub fn add_batch(&mut self, ids: &[usize], vecs: &[Vec<f32>], threads: usize) {
        assert!(self.trained, "IvfIndex::add before train");
        assert_eq!(ids.len(), vecs.len(), "ids/vectors length mismatch");
        for v in vecs {
            assert_eq!(
                v.len(),
                self.dim,
                "dimension mismatch: index expects {}-d vectors, got {}-d",
                self.dim,
                v.len()
            );
        }
        if vecs.is_empty() {
            return;
        }
        let cents: Vec<&[f32]> = (0..self.nlist()).map(|c| self.centroid(c)).collect();
        let assign = |v: &Vec<f32>| {
            let mut x = v.clone();
            normalize(&mut x);
            let c = nearest_centroid_slices(&cents, &x);
            (c, x)
        };
        let threads = threads.clamp(1, vecs.len());
        let assigned: Vec<(usize, Vec<f32>)> = if threads == 1 {
            vecs.iter().map(assign).collect()
        } else {
            let mut slots: Vec<Option<(usize, Vec<f32>)>> = vec![None; vecs.len()];
            std::thread::scope(|scope| {
                let assign = &assign;
                let mut rest = slots.as_mut_slice();
                for range in partition(vecs.len(), threads) {
                    let (chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    let vs = &vecs[range];
                    scope.spawn(move || {
                        for (slot, v) in chunk.iter_mut().zip(vs) {
                            *slot = Some(assign(v));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("add_batch worker skipped a slot"))
                .collect()
        };
        drop(cents);
        let quantize = self.quantized.then_some(self.qparams);
        for (id, (c, x)) in ids.iter().zip(assigned) {
            self.cells[c].push(*id, &x, quantize);
        }
    }

    /// Tombstone every live row stored under `id`; compaction of the cell
    /// lists triggers automatically once a quarter of the stored rows are
    /// dead. Returns `true` when at least one row was removed.
    pub fn remove(&mut self, id: usize) -> bool {
        let mut removed = false;
        for cell in &mut self.cells {
            for pos in 0..cell.ids.len() {
                if cell.ids[pos] == id && !cell.dead[pos] {
                    cell.dead[pos] = true;
                    self.dead_count += 1;
                    removed = true;
                }
            }
        }
        if removed {
            self.maybe_compact();
        }
        removed
    }

    /// Tombstone every live row whose id is in `ids`; one scan over the
    /// cell lists regardless of how many ids are removed. Returns the
    /// number of rows tombstoned.
    pub fn remove_batch(&mut self, ids: &[usize]) -> usize {
        let kill: HashSet<usize> = ids.iter().copied().collect();
        let mut removed = 0;
        for cell in &mut self.cells {
            for pos in 0..cell.ids.len() {
                if !cell.dead[pos] && kill.contains(&cell.ids[pos]) {
                    cell.dead[pos] = true;
                    self.dead_count += 1;
                    removed += 1;
                }
            }
        }
        if removed > 0 {
            self.maybe_compact();
        }
        removed
    }

    fn maybe_compact(&mut self) {
        if self.dead_count > 0 && self.dead_count * 4 >= self.len() {
            self.compact();
        }
    }

    /// Physically drop tombstoned rows from every cell, preserving the
    /// within-cell insertion order of the survivors (bit-copies only, so a
    /// compacted index is bit-identical to one freshly built from the live
    /// vectors in the same order). Returns the number of rows reclaimed.
    pub fn compact(&mut self) -> usize {
        if self.dead_count == 0 {
            return 0;
        }
        let (dim, quantized) = (self.dim, self.quantized);
        let removed: usize = self
            .cells
            .iter_mut()
            .map(|c| c.compact(dim, quantized))
            .sum();
        self.dead_count = 0;
        index_metrics().compactions.inc();
        removed
    }

    /// Top-k approximate search over the `nprobe` nearest cells. `k = 0`
    /// returns an empty vec without allocating; `k > len` returns every
    /// probed hit sorted.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.search_with(query, k, &mut IvfScratch::default())
    }

    /// Two-pass quantized top-k search: probe the `nprobe` nearest cells
    /// scanning only the int8 sidecars, keep the top `rescore_factor * k`
    /// candidates by approximate score, then rescore those survivors with
    /// the exact f32 [`dot`] and return the best `k`. Reported scores are
    /// always exact. Panics when the index was not built quantized.
    pub fn search_quantized(&self, query: &[f32], k: usize, rescore_factor: usize) -> Vec<Hit> {
        self.search_quantized_with(query, k, rescore_factor, &mut IvfScratch::default())
    }

    /// Batched top-k approximate search: one result list per query, each
    /// bit-identical in ids and ordering to [`IvfIndex::search`] on the
    /// same query. Worker count defaults to the available parallelism.
    /// Queries are anything slice-like, so callers holding borrowed
    /// embeddings need not clone them.
    pub fn search_batch<V: AsRef<[f32]> + Sync>(&self, queries: &[V], k: usize) -> Vec<Vec<Hit>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.search_batch_threads(queries, k, threads)
    }

    /// Batched [`IvfIndex::search_quantized`] with the default worker
    /// count; bit-identical to the sequential quantized search per query.
    pub fn search_batch_quantized<V: AsRef<[f32]> + Sync>(
        &self,
        queries: &[V],
        k: usize,
        rescore_factor: usize,
    ) -> Vec<Vec<Hit>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.search_batch_quantized_threads(queries, k, rescore_factor, threads)
    }

    /// [`IvfIndex::search_batch`] with an explicit worker count. Queries are
    /// chunk-balanced across scoped worker threads; each worker probes with
    /// its own reused [`IvfScratch`], so results are independent of the
    /// worker count by construction.
    pub fn search_batch_threads<V: AsRef<[f32]> + Sync>(
        &self,
        queries: &[V],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<Hit>> {
        self.batch_dispatch(queries, threads, k == 0, |q, scratch| {
            self.search_with(q, k, scratch)
        })
    }

    /// [`IvfIndex::search_batch_quantized`] with an explicit worker count.
    /// Same chunk-balanced fan-out as the exact batch path; per-query work
    /// is the sequential quantized probe, so results are bit-identical for
    /// any thread count by construction.
    pub fn search_batch_quantized_threads<V: AsRef<[f32]> + Sync>(
        &self,
        queries: &[V],
        k: usize,
        rescore_factor: usize,
        threads: usize,
    ) -> Vec<Vec<Hit>> {
        assert!(
            self.quantized,
            "search_batch_quantized on an unquantized IvfIndex"
        );
        self.batch_dispatch(queries, threads, k == 0, |q, scratch| {
            self.search_quantized_with(q, k, rescore_factor, scratch)
        })
    }

    /// Shared batched fan-out: chunk-balance queries across scoped worker
    /// threads, each running `per_query` with its own reused scratch.
    fn batch_dispatch<V, F>(&self, queries: &[V], threads: usize, trivial: bool, per_query: F) -> Vec<Vec<Hit>>
    where
        V: AsRef<[f32]> + Sync,
        F: Fn(&[f32], &mut IvfScratch) -> Vec<Hit> + Sync,
    {
        assert!(self.trained, "IvfIndex::search before train");
        if queries.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<Vec<Hit>> = vec![Vec::new(); queries.len()];
        let threads = threads.clamp(1, queries.len());
        if threads == 1 || trivial {
            let mut scratch = IvfScratch::default();
            for (slot, q) in out.iter_mut().zip(queries) {
                *slot = per_query(q.as_ref(), &mut scratch);
            }
            return out;
        }
        let per_query = &per_query;
        std::thread::scope(|scope| {
            let mut out_rest = out.as_mut_slice();
            let mut q_rest = queries;
            for range in partition(queries.len(), threads) {
                let (slots, rest) = out_rest.split_at_mut(range.len());
                let (qs, qrest) = q_rest.split_at(range.len());
                out_rest = rest;
                q_rest = qrest;
                scope.spawn(move || {
                    let mut scratch = IvfScratch::default();
                    for (slot, q) in slots.iter_mut().zip(qs) {
                        *slot = per_query(q.as_ref(), &mut scratch);
                    }
                });
            }
        });
        out
    }

    /// Normalize the query into scratch and rank cells by centroid
    /// similarity (shared head of the exact and quantized probes).
    fn rank_cells(&self, query: &[f32], scratch: &mut IvfScratch) {
        scratch.q.clear();
        scratch.q.extend_from_slice(query);
        normalize(&mut scratch.q);
        let q = &scratch.q;
        scratch.cell_scores.clear();
        scratch
            .cell_scores
            .extend((0..self.nlist()).map(|c| (c, dot(self.centroid(c), q))));
        scratch
            .cell_scores
            .sort_by(|a, b| nan_last_desc(a.1, b.1));
    }

    fn search_with(&self, query: &[f32], k: usize, scratch: &mut IvfScratch) -> Vec<Hit> {
        assert!(self.trained, "IvfIndex::search before train");
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.live_len() == 0 {
            return Vec::new();
        }
        self.rank_cells(query, scratch);
        let q = &scratch.q;

        scratch.hits.clear();
        for &(c, _) in scratch.cell_scores.iter().take(self.config.nprobe.max(1)) {
            let cell = &self.cells[c];
            for pos in 0..cell.ids.len() {
                if cell.dead[pos] {
                    continue;
                }
                scratch.hits.push(Hit {
                    id: cell.ids[pos],
                    score: dot(cell.row(pos, self.dim), q),
                });
            }
        }
        scratch
            .hits
            .sort_by(|a, b| nan_last_desc(a.score, b.score));
        scratch.hits.iter().take(k).copied().collect()
    }

    /// The quantized probe: approximate i8 scores over the probed cells'
    /// sidecars, stable-sorted (ties keep deterministic probe order),
    /// truncated to `rescore_factor * k` survivors, then exact f32
    /// rescoring of only those rows. The per-query work is sequential and
    /// deterministic, which is what makes the batched fan-out bit-identical
    /// for any thread count.
    fn search_quantized_with(
        &self,
        query: &[f32],
        k: usize,
        rescore_factor: usize,
        scratch: &mut IvfScratch,
    ) -> Vec<Hit> {
        assert!(self.trained, "IvfIndex::search before train");
        assert!(
            self.quantized,
            "search_quantized on an unquantized IvfIndex"
        );
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.live_len() == 0 {
            return Vec::new();
        }
        self.rank_cells(query, scratch);
        scratch.qq.clear();
        self.qparams.quantize_append(&scratch.q, &mut scratch.qq);
        let (q, qq) = (&scratch.q, &scratch.qq);

        let m = index_metrics();
        let r = k.saturating_mul(rescore_factor.max(1));
        let scan_t = StageTimer::start(&m.scan_us);
        scratch.approx.clear();
        for &(c, _) in scratch.cell_scores.iter().take(self.config.nprobe.max(1)) {
            let cell = &self.cells[c];
            for pos in 0..cell.ids.len() {
                if cell.dead[pos] {
                    continue;
                }
                let s = dot_i8(cell.qrow(pos, self.dim), qq) as f32;
                scratch.approx.push((s, c, pos));
            }
        }
        scratch.approx.sort_by(|a, b| nan_last_desc(a.0, b.0));
        scratch.approx.truncate(r);
        scan_t.stop();

        let rescore_t = StageTimer::start(&m.rescore_us);
        scratch.hits.clear();
        for &(_, c, pos) in scratch.approx.iter() {
            let cell = &self.cells[c];
            scratch.hits.push(Hit {
                id: cell.ids[pos],
                score: dot(cell.row(pos, self.dim), q),
            });
        }
        scratch
            .hits
            .sort_by(|a, b| nan_last_desc(a.score, b.score));
        let out = scratch.hits.iter().take(k).copied().collect();
        rescore_t.stop();
        out
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_score = f32::NEG_INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let s = dot(c, v);
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

fn nearest_centroid_slices(centroids: &[&[f32]], v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_score = f32::NEG_INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let s = dot(c, v);
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_corpus(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn exact_when_probing_all_cells() {
        let corpus = random_corpus(300, 16, 1);
        let mut ivf = IvfIndex::new(
            16,
            IvfConfig {
                nlist: 8,
                nprobe: 8,
                ..IvfConfig::default()
            },
        );
        ivf.train(&corpus);
        let mut flat = FlatIndex::new(16);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
            flat.add(i, v);
        }
        let q = &corpus[42];
        let a = ivf.search(q, 5);
        let b = flat.search(q, 5);
        assert_eq!(
            a.iter().map(|h| h.id).collect::<Vec<_>>(),
            b.iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn high_recall_with_partial_probe() {
        let corpus = random_corpus(1000, 16, 2);
        let mut ivf = IvfIndex::new(
            16,
            IvfConfig {
                nlist: 16,
                nprobe: 6,
                ..IvfConfig::default()
            },
        );
        ivf.train(&corpus);
        let mut flat = FlatIndex::new(16);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
            flat.add(i, v);
        }
        // Recall@10 over 20 queries should be decent.
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q = &corpus[rng.random_range(0..corpus.len())];
            let approx: Vec<usize> = ivf.search(q, 10).iter().map(|h| h.id).collect();
            let exact: Vec<usize> = flat.search(q, 10).iter().map(|h| h.id).collect();
            total += exact.len();
            hits += exact.iter().filter(|i| approx.contains(i)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.6, "recall too low: {recall}");
    }

    #[test]
    #[should_panic(expected = "before train")]
    fn add_requires_training() {
        let mut ivf = IvfIndex::new(4, IvfConfig::default());
        ivf.add(0, &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn k_zero_returns_empty_without_allocating() {
        let corpus = random_corpus(50, 8, 5);
        let mut ivf = IvfIndex::new(8, IvfConfig::default());
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        let hits = ivf.search(&corpus[0], 0);
        assert!(hits.is_empty());
        assert_eq!(hits.capacity(), 0);
    }

    #[test]
    fn k_larger_than_len_returns_all_probed_sorted() {
        let corpus = random_corpus(30, 8, 6);
        let mut ivf = IvfIndex::new(
            8,
            IvfConfig {
                nlist: 4,
                nprobe: 4,
                ..IvfConfig::default()
            },
        );
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        let hits = ivf.search(&corpus[0], 10_000);
        assert_eq!(hits.len(), 30); // full probe: every vector comes back
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn search_batch_matches_sequential_search() {
        let corpus = random_corpus(400, 16, 7);
        let mut ivf = IvfIndex::new(
            16,
            IvfConfig {
                nlist: 8,
                nprobe: 3,
                ..IvfConfig::default()
            },
        );
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        let queries: Vec<Vec<f32>> = corpus[..13].to_vec();
        for threads in [1, 4] {
            let batch = ivf.search_batch_threads(&queries, 10, threads);
            for (q, b) in queries.iter().zip(&batch) {
                let seq = ivf.search(q, 10);
                assert_eq!(seq.len(), b.len());
                for (x, y) in seq.iter().zip(b) {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn nan_candidates_sort_after_finite_hits() {
        // Unlike the flat index (whose top-k admission drops NaN scores),
        // IVF merges per-cell lists and can carry NaN-scored entries; the
        // total-order sort must keep every finite hit ahead of them.
        let corpus = random_corpus(120, 8, 9);
        let mut ivf = IvfIndex::new(
            8,
            IvfConfig {
                nlist: 4,
                nprobe: 4,
                ..IvfConfig::default()
            },
        );
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        for j in 0..3 {
            ivf.add(900 + j, &[f32::NAN; 8]);
        }
        let hits = ivf.search(&corpus[7], 123);
        let first_nan = hits
            .iter()
            .position(|h| h.score.is_nan())
            .unwrap_or(hits.len());
        for h in &hits[..first_nan] {
            assert!(!h.score.is_nan());
        }
        for h in &hits[first_nan..] {
            assert!(h.score.is_nan(), "finite hit sorted after a NaN hit");
        }
        for w in hits[..first_nan].windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn add_batch_is_bit_identical_to_sequential_add() {
        let corpus = random_corpus(317, 16, 12);
        let ids: Vec<usize> = (0..corpus.len()).map(|i| i + 100).collect();
        let cfg = IvfConfig {
            nlist: 8,
            nprobe: 3,
            ..IvfConfig::default()
        };
        let mut seq = IvfIndex::new(16, cfg);
        seq.train(&corpus);
        for (id, v) in ids.iter().zip(&corpus) {
            seq.add(*id, v);
        }
        for threads in [1usize, 3, 8] {
            let mut par = IvfIndex::new(16, cfg);
            par.train(&corpus);
            par.add_batch(&ids, &corpus, threads);
            assert_eq!(par.len(), seq.len());
            // Cell contents must match exactly: same ids, same vector bits,
            // same within-cell insertion order.
            for (a, b) in seq.cells.iter().zip(&par.cells) {
                assert_eq!(a.ids, b.ids);
                assert_eq!(a.data.len(), b.data.len());
                for (x, y) in a.data.iter().zip(&b.data) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            for q in corpus.iter().take(5) {
                let a = seq.search(q, 10);
                let b = par.search(q, 10);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
        // Degenerate batch shapes.
        let mut par = IvfIndex::new(16, cfg);
        par.train(&corpus);
        par.add_batch(&[], &[], 4);
        assert!(par.is_empty());
    }

    #[test]
    fn quantized_probe_matches_exact_probe_top1() {
        let corpus = random_corpus(500, 16, 21);
        let cfg = IvfConfig {
            nlist: 8,
            nprobe: 8, // probe everything: approximation comes only from i8
            ..IvfConfig::default()
        };
        let mut exact = IvfIndex::new(16, cfg);
        let mut quant = IvfIndex::quantized(16, cfg);
        exact.train(&corpus);
        quant.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            exact.add(i, v);
            quant.add(i, v);
        }
        for q in corpus.iter().take(10) {
            let a = exact.search(q, 5);
            let b = quant.search_quantized(q, 5, 4);
            assert_eq!(a[0].id, b[0].id, "rescored top-1 must match exact");
            assert_eq!(a[0].score.to_bits(), b[0].score.to_bits());
        }
    }

    #[test]
    fn quantized_batch_is_bit_identical_for_any_thread_count() {
        let corpus = random_corpus(400, 8, 22);
        let cfg = IvfConfig {
            nlist: 8,
            nprobe: 4,
            ..IvfConfig::default()
        };
        let mut ivf = IvfIndex::quantized(8, cfg);
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        let queries: Vec<Vec<f32>> = corpus[..11].to_vec();
        let seq: Vec<Vec<Hit>> = queries
            .iter()
            .map(|q| ivf.search_quantized(q, 7, 3))
            .collect();
        for threads in [1usize, 2, 5, 8] {
            let batch = ivf.search_batch_quantized_threads(&queries, 7, 3, threads);
            assert_eq!(batch.len(), seq.len());
            for (a, b) in seq.iter().zip(&batch) {
                assert_eq!(a, b, "threads={threads}");
            }
        }
    }

    #[test]
    fn removed_ids_stay_gone_and_compaction_matches_fresh_build() {
        let corpus = random_corpus(200, 8, 23);
        let cfg = IvfConfig {
            nlist: 4,
            nprobe: 4,
            ..IvfConfig::default()
        };
        let mut ivf = IvfIndex::quantized(8, cfg);
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        let kill: Vec<usize> = (0..200).filter(|i| i % 11 == 0).collect();
        assert_eq!(ivf.remove_batch(&kill), kill.len());
        assert_eq!(ivf.live_len(), 200 - kill.len());
        for q in corpus.iter().take(5) {
            for hits in [ivf.search(q, 50), ivf.search_quantized(q, 50, 4)] {
                for h in &hits {
                    assert!(h.id % 11 != 0, "removed id {} returned", h.id);
                }
            }
        }

        ivf.compact();
        assert_eq!(ivf.tombstones(), 0);
        let mut fresh = IvfIndex::quantized(8, cfg);
        fresh.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            if i % 11 != 0 {
                fresh.add(i, v);
            }
        }
        for (a, b) in ivf.cells.iter().zip(&fresh.cells) {
            assert_eq!(a.ids, b.ids);
            assert_eq!(a.qdata, b.qdata);
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let q = &corpus[2];
        assert_eq!(ivf.search(q, 9), fresh.search(q, 9));
        assert_eq!(
            ivf.search_quantized(q, 9, 4),
            fresh.search_quantized(q, 9, 4)
        );
    }

    #[test]
    fn heavy_removal_triggers_automatic_compaction() {
        let corpus = random_corpus(100, 4, 24);
        let mut ivf = IvfIndex::quantized(4, IvfConfig::default());
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        let kill: Vec<usize> = (0..30).collect();
        ivf.remove_batch(&kill);
        assert_eq!(ivf.tombstones(), 0, "30% dead must have compacted");
        assert_eq!(ivf.len(), 70);
    }

    #[test]
    fn small_corpus_clamps_nlist() {
        let corpus = random_corpus(5, 4, 4);
        let mut ivf = IvfIndex::new(4, IvfConfig::default());
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        assert_eq!(ivf.len(), 5);
        assert!(!ivf.search(&corpus[0], 3).is_empty());
    }
}
