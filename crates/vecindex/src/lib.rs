//! # gar-vecindex — vector similarity search for GAR's retrieval stage
//!
//! The paper encodes all dialect expressions once with the trained retrieval
//! model and "use[s] the Faiss library for efficient similarity search to
//! get the closest subset of dialect expressions for each given NL query"
//! (Section V-A2). This crate is that substrate: an exact [`FlatIndex`]
//! (Faiss `IndexFlatIP` over normalized vectors = cosine) and an
//! approximate [`IvfIndex`] (`IndexIVFFlat`) with a k-means coarse
//! quantizer, reproducing the speed/recall trade-off.
//!
//! Both indices expose a batched entry point (`search_batch`) built for the
//! experiment harness's replay loops: blocked dot kernels, the vector store
//! sharded across scoped worker threads (flat) or queries chunk-balanced
//! over workers (IVF), and per-worker scratch reused across queries. Batched
//! results are bit-identical in ids and ordering to per-query `search`.
//!
//! ```
//! use gar_vecindex::FlatIndex;
//!
//! let mut idx = FlatIndex::new(2);
//! idx.add(10, &[1.0, 0.0]);
//! idx.add(20, &[0.0, 1.0]);
//! let hits = idx.search(&[0.9, 0.1], 1);
//! assert_eq!(hits[0].id, 10);
//! ```

#![warn(missing_docs)]

pub mod flat;
pub mod ivf;
pub mod quant;

pub use flat::{dot, nan_last_desc, normalize, FlatIndex, FlatView, Hit};
pub use ivf::{IvfConfig, IvfIndex};
pub use quant::QuantParams;

use gar_obs::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Interned [`gar_obs`] handles for the index-level metrics (catalogued in
/// DESIGN.md § Observability): `index.scan_us` and `index.rescore_us`
/// histograms around the two passes of quantized search, and the
/// `index.compactions` counter incremented per physical compaction.
pub(crate) struct IndexMetrics {
    pub(crate) scan_us: Arc<Histogram>,
    pub(crate) rescore_us: Arc<Histogram>,
    pub(crate) compactions: Arc<Counter>,
}

/// The process-wide index metric handles, resolved once. The registry's
/// in-place reset keeps cached handles valid for the process lifetime.
pub(crate) fn index_metrics() -> &'static IndexMetrics {
    static METRICS: OnceLock<IndexMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = gar_obs::global();
        IndexMetrics {
            scan_us: r.histogram("index.scan_us"),
            rescore_us: r.histogram("index.rescore_us"),
            compactions: r.counter("index.compactions"),
        }
    })
}
