//! # gar-vecindex — vector similarity search for GAR's retrieval stage
//!
//! The paper encodes all dialect expressions once with the trained retrieval
//! model and "use[s] the Faiss library for efficient similarity search to
//! get the closest subset of dialect expressions for each given NL query"
//! (Section V-A2). This crate is that substrate: an exact [`FlatIndex`]
//! (Faiss `IndexFlatIP` over normalized vectors = cosine) and an
//! approximate [`IvfIndex`] (`IndexIVFFlat`) with a k-means coarse
//! quantizer, reproducing the speed/recall trade-off.
//!
//! Both indices expose a batched entry point (`search_batch`) built for the
//! experiment harness's replay loops: blocked dot kernels, the vector store
//! sharded across scoped worker threads (flat) or queries chunk-balanced
//! over workers (IVF), and per-worker scratch reused across queries. Batched
//! results are bit-identical in ids and ordering to per-query `search`.
//!
//! ```
//! use gar_vecindex::FlatIndex;
//!
//! let mut idx = FlatIndex::new(2);
//! idx.add(10, &[1.0, 0.0]);
//! idx.add(20, &[0.0, 1.0]);
//! let hits = idx.search(&[0.9, 0.1], 1);
//! assert_eq!(hits[0].id, 10);
//! ```

#![warn(missing_docs)]

pub mod flat;
pub mod ivf;

pub use flat::{dot, nan_last_desc, normalize, FlatIndex, Hit};
pub use ivf::{IvfConfig, IvfIndex};
