//! Int8 scalar quantization for the vector indices.
//!
//! Stored vectors are L2-normalized, so every component lies in `[-1, 1]`
//! and a *fixed* symmetric step of `1/127` loses no range: `q = round(x *
//! 127)` round-trips to within half a step and — crucially for the
//! incremental index — never needs recalibration when vectors are added or
//! removed. [`QuantParams`] still carries an explicit `(scale, offset)`
//! pair so a per-shard calibrated variant can slot in later without a
//! format change.
//!
//! The scan kernels mirror the f32 machinery in [`crate::flat`] exactly:
//! 8-wide blocked dot products with independent accumulator lanes (i32
//! accumulation is exact, so every path — scalar, blocked, query-blocked,
//! const-dim specialized — produces the *identical* integer), a
//! [`QBLOCK`]-query tile scorer, and const-dim monomorphizations for the
//! embedding widths the system configures. Integer scores are handed to
//! the shared top-k selector as `f32`; every i8×i8 dot is bounded by
//! `dim * 127²`, far below 2²⁴, so the conversion is value-exact and the
//! approximate ranking is deterministic on every path.
//!
//! Quantized search is a two-pass scheme: scan the i8 store (4× less
//! memory bandwidth than f32) for the top `rescore_factor * k` candidates
//! under the approximate integer score, then rescore only those survivors
//! with the exact f32 [`dot`](crate::flat::dot) — the final ranking over
//! the survivors is exact, and in practice (seeded-pool harness in
//! `gar-testkit`) the rescored top-1 is bit-identical to a full f32 scan.

use crate::flat::QBLOCK;

/// Largest quantized magnitude (symmetric int8: `-127..=127`; -128 unused
/// so negation stays in range).
pub const QMAX: i32 = 127;

/// Scalar-quantization parameters: `x ≈ q * scale + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Reconstruction step per quantized unit.
    pub scale: f32,
    /// Reconstruction offset (0 for the symmetric unit-range scheme).
    pub offset: f32,
}

impl Default for QuantParams {
    fn default() -> Self {
        QuantParams::unit()
    }
}

impl QuantParams {
    /// Parameters for L2-normalized input: symmetric over `[-1, 1]`.
    pub fn unit() -> Self {
        QuantParams {
            scale: 1.0 / QMAX as f32,
            offset: 0.0,
        }
    }

    /// Quantize one component. Out-of-range values saturate; NaN maps to 0
    /// (a NaN candidate then scores ~0 in the approximate scan and is
    /// rejected by the exact rescore, instead of poisoning the kernel).
    #[inline]
    pub fn quantize_one(self, x: f32) -> i8 {
        let q = (x - self.offset) / self.scale;
        if q.is_nan() {
            return 0;
        }
        q.round().clamp(-(QMAX as f32), QMAX as f32) as i8
    }

    /// Quantize a vector, appending to `out` (callers pre-size or reuse).
    pub fn quantize_append(self, v: &[f32], out: &mut Vec<i8>) {
        out.extend(v.iter().map(|&x| self.quantize_one(x)));
    }

    /// Quantize a vector into an exact-size slice.
    pub fn quantize_slice(self, v: &[f32], out: &mut [i8]) {
        debug_assert_eq!(v.len(), out.len());
        for (o, &x) in out.iter_mut().zip(v) {
            *o = self.quantize_one(x);
        }
    }

    /// Reconstruct one component.
    #[inline]
    pub fn dequantize_one(self, q: i8) -> f32 {
        q as f32 * self.scale + self.offset
    }
}

/// Blocked int8 dot product with i32 accumulation: 8-wide chunks with
/// independent accumulator lanes, scalar tail. Integer accumulation is
/// exact, so (unlike the f32 kernels) *any* evaluation order produces the
/// same result — the blocking exists purely for the vectorizer.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0i32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for j in 0..8 {
            acc[j] += x[j] as i32 * y[j] as i32;
        }
    }
    let mut s: i32 = acc.iter().sum();
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += *x as i32 * *y as i32;
    }
    s
}

/// One int8 candidate against [`QBLOCK`] quantized queries at once
/// (`qcat` holds the queries concatenated, `dim`-strided). `inline(always)`
/// for the same reason as the f32 twin: the tile scorer relies on the
/// query chunks being hoisted into registers across candidates.
#[inline(always)]
fn dot_i8_qblock(cand: &[i8], qcat: &[i8], dim: usize, out: &mut [i32; QBLOCK]) {
    let blocks = dim - dim % 8;
    let mut acc = [[0i32; 8]; QBLOCK];
    let mut i = 0;
    while i < blocks {
        let cb: &[i8; 8] = cand[i..i + 8].try_into().unwrap();
        for (t, a) in acc.iter_mut().enumerate() {
            let qb: &[i8; 8] = qcat[t * dim + i..t * dim + i + 8].try_into().unwrap();
            for j in 0..8 {
                a[j] += cb[j] as i32 * qb[j] as i32;
            }
        }
        i += 8;
    }
    for (t, (o, a)) in out.iter_mut().zip(&acc).enumerate() {
        let mut s: i32 = a.iter().sum();
        for j in blocks..dim {
            s += cand[j] as i32 * qcat[t * dim + j] as i32;
        }
        *o = s;
    }
}

/// Score one int8 candidate tile against [`QBLOCK`] concatenated quantized
/// queries, writing one f32 score row per query (`rows` is `tile`-strided).
/// The i32 → f32 conversion is value-exact (|dot| ≤ dim·127² < 2²⁴ for
/// every configured dimension), so downstream selection sees the integer
/// ranking unchanged.
#[inline(always)]
fn score_tile_i8_impl(
    data: &[i8],
    dim: usize,
    c0: usize,
    tile: usize,
    qcat: &[i8],
    rows: &mut [f32],
) {
    let mut s = [0i32; QBLOCK];
    for ci in 0..tile {
        let c = c0 + ci;
        dot_i8_qblock(&data[c * dim..(c + 1) * dim], qcat, dim, &mut s);
        for t in 0..QBLOCK {
            rows[t * tile + ci] = s[t] as f32;
        }
    }
}

/// Monomorphized int8 tile scorer for a compile-time dimension (constant
/// trip count → fully unrolled inner dot, query block in registers).
#[inline(never)]
fn score_tile_i8_d<const D: usize>(
    data: &[i8],
    c0: usize,
    tile: usize,
    qcat: &[i8],
    rows: &mut [f32],
) {
    score_tile_i8_impl(data, D, c0, tile, qcat, rows);
}

/// Fallback int8 tile scorer for uncommon dimensions.
#[inline(never)]
fn score_tile_i8_dyn(
    data: &[i8],
    dim: usize,
    c0: usize,
    tile: usize,
    qcat: &[i8],
    rows: &mut [f32],
) {
    score_tile_i8_impl(data, dim, c0, tile, qcat, rows);
}

/// Dispatch to a monomorphized int8 scorer for the dimensions the system
/// configures. Integer accumulation means every path is exactly equal, not
/// just bit-identical-by-construction.
pub(crate) fn score_tile_i8(
    data: &[i8],
    dim: usize,
    c0: usize,
    tile: usize,
    qcat: &[i8],
    rows: &mut [f32],
) {
    match dim {
        8 => score_tile_i8_d::<8>(data, c0, tile, qcat, rows),
        16 => score_tile_i8_d::<16>(data, c0, tile, qcat, rows),
        32 => score_tile_i8_d::<32>(data, c0, tile, qcat, rows),
        64 => score_tile_i8_d::<64>(data, c0, tile, qcat, rows),
        128 => score_tile_i8_d::<128>(data, c0, tile, qcat, rows),
        _ => score_tile_i8_dyn(data, dim, c0, tile, qcat, rows),
    }
}

/// Score one int8 candidate tile against a single quantized query.
#[inline(never)]
pub(crate) fn score_tile_i8_q1(
    data: &[i8],
    dim: usize,
    c0: usize,
    q: &[i8],
    row: &mut [f32],
) {
    for (ci, slot) in row.iter_mut().enumerate() {
        let c = c0 + ci;
        *slot = dot_i8(q, &data[c * dim..(c + 1) * dim]) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(97);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    #[test]
    fn quantize_round_trips_within_half_a_step() {
        let p = QuantParams::unit();
        for &x in &[-1.0f32, -0.5, -0.013, 0.0, 0.013, 0.5, 0.9999, 1.0] {
            let q = p.quantize_one(x);
            let back = p.dequantize_one(q);
            assert!(
                (back - x).abs() <= p.scale / 2.0 + 1e-7,
                "{x} -> {q} -> {back}"
            );
        }
    }

    #[test]
    fn quantize_saturates_and_maps_nan_to_zero() {
        let p = QuantParams::unit();
        assert_eq!(p.quantize_one(10.0), 127);
        assert_eq!(p.quantize_one(-10.0), -127);
        assert_eq!(p.quantize_one(f32::INFINITY), 127);
        assert_eq!(p.quantize_one(f32::NEG_INFINITY), -127);
        assert_eq!(p.quantize_one(f32::NAN), 0);
    }

    #[test]
    fn blocked_i8_dot_matches_naive() {
        for len in [0usize, 1, 7, 8, 9, 19, 64, 65] {
            let a: Vec<i8> = lcg_vec(len, 3).iter().map(|x| (x * 127.0) as i8).collect();
            let b: Vec<i8> = lcg_vec(len, 4).iter().map(|x| (x * 127.0) as i8).collect();
            let naive: i32 = a.iter().zip(&b).map(|(x, y)| *x as i32 * *y as i32).sum();
            assert_eq!(dot_i8(&a, &b), naive, "len={len}");
        }
    }

    #[test]
    fn qblock_i8_dot_equals_scalar_dot() {
        for dim in [5usize, 8, 19, 64] {
            let cand: Vec<i8> = lcg_vec(dim, 9).iter().map(|x| (x * 127.0) as i8).collect();
            let qcat: Vec<i8> = lcg_vec(QBLOCK * dim, 10)
                .iter()
                .map(|x| (x * 127.0) as i8)
                .collect();
            let mut out = [0i32; QBLOCK];
            dot_i8_qblock(&cand, &qcat, dim, &mut out);
            for t in 0..QBLOCK {
                assert_eq!(out[t], dot_i8(&cand, &qcat[t * dim..(t + 1) * dim]));
            }
        }
    }

    #[test]
    fn tile_scorer_paths_agree_exactly() {
        // Const-dim specializations, the dynamic fallback, and the
        // single-query scorer all produce the identical integers.
        for dim in [8usize, 19, 64] {
            let n = 70;
            let data: Vec<i8> = lcg_vec(n * dim, 21).iter().map(|x| (x * 127.0) as i8).collect();
            let qcat: Vec<i8> = lcg_vec(QBLOCK * dim, 22)
                .iter()
                .map(|x| (x * 127.0) as i8)
                .collect();
            let tile = n;
            let mut rows = vec![0.0f32; QBLOCK * tile];
            score_tile_i8(&data, dim, 0, tile, &qcat, &mut rows);
            let mut dyn_rows = vec![0.0f32; QBLOCK * tile];
            score_tile_i8_dyn(&data, dim, 0, tile, &qcat, &mut dyn_rows);
            assert_eq!(rows, dyn_rows);
            for t in 0..QBLOCK {
                let mut row = vec![0.0f32; tile];
                score_tile_i8_q1(&data, dim, 0, &qcat[t * dim..(t + 1) * dim], &mut row);
                assert_eq!(&rows[t * tile..(t + 1) * tile], &row[..]);
            }
        }
    }

    #[test]
    fn quantized_dot_approximates_f32_dot() {
        let p = QuantParams::unit();
        let dim = 64;
        let mut a = lcg_vec(dim, 31);
        let mut b = lcg_vec(dim, 32);
        crate::flat::normalize(&mut a);
        crate::flat::normalize(&mut b);
        let exact = crate::flat::dot(&a, &b);
        let mut qa = Vec::new();
        let mut qb = Vec::new();
        p.quantize_append(&a, &mut qa);
        p.quantize_append(&b, &mut qb);
        let approx = dot_i8(&qa, &qb) as f32 * p.scale * p.scale;
        assert!(
            (approx - exact).abs() < 0.05,
            "approx {approx} vs exact {exact}"
        );
    }
}
