//! Property tests on the vector indices.

use gar_vecindex::{FlatIndex, IvfConfig, IvfIndex};
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(
        proptest::collection::vec(-1.0f32..1.0, 8),
        1..60,
    )
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flat top-1 equals the brute-force cosine argmax.
    #[test]
    fn flat_top1_is_argmax(corpus in corpus_strategy(), query in proptest::collection::vec(-1.0f32..1.0, 8)) {
        prop_assume!(query.iter().any(|v| v.abs() > 1e-3));
        let mut idx = FlatIndex::new(8);
        for (i, v) in corpus.iter().enumerate() {
            idx.add(i, v);
        }
        let hits = idx.search(&query, 1);
        let brute: Option<usize> = corpus
            .iter()
            .enumerate()
            .max_by(|a, b| {
                cosine(a.1, &query)
                    .partial_cmp(&cosine(b.1, &query))
                    .unwrap()
            })
            .map(|(i, _)| i);
        let best_score = brute.map(|i| cosine(&corpus[i], &query)).unwrap_or(0.0);
        // Ties allowed: the returned hit must score as well as the argmax.
        prop_assert!((hits[0].score - best_score).abs() < 1e-4,
            "hit {} vs argmax {best_score}", hits[0].score);
    }

    /// Scores come back sorted and k caps the result length.
    #[test]
    fn flat_results_sorted_and_capped(corpus in corpus_strategy(), k in 1usize..10) {
        let mut idx = FlatIndex::new(8);
        for (i, v) in corpus.iter().enumerate() {
            idx.add(i, v);
        }
        let hits = idx.search(&[0.5; 8], k);
        prop_assert!(hits.len() <= k);
        prop_assert!(hits.len() <= corpus.len());
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// IVF probing every cell reproduces the exact flat result ids.
    #[test]
    fn ivf_full_probe_matches_flat(corpus in corpus_strategy()) {
        prop_assume!(corpus.len() >= 4);
        let nlist = 4usize;
        let mut ivf = IvfIndex::new(8, IvfConfig { nlist, nprobe: nlist, ..IvfConfig::default() });
        ivf.train(&corpus);
        let mut flat = FlatIndex::new(8);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
            flat.add(i, v);
        }
        let q = &corpus[0];
        let a: Vec<f32> = ivf.search(q, 5).iter().map(|h| h.score).collect();
        let b: Vec<f32> = flat.search(q, 5).iter().map(|h| h.score).collect();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
