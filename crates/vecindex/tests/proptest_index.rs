//! Property tests on the vector indices.

use gar_vecindex::{FlatIndex, IvfConfig, IvfIndex};
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(
        proptest::collection::vec(-1.0f32..1.0, 8),
        1..60,
    )
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flat top-1 equals the brute-force cosine argmax.
    #[test]
    fn flat_top1_is_argmax(corpus in corpus_strategy(), query in proptest::collection::vec(-1.0f32..1.0, 8)) {
        prop_assume!(query.iter().any(|v| v.abs() > 1e-3));
        let mut idx = FlatIndex::new(8);
        for (i, v) in corpus.iter().enumerate() {
            idx.add(i, v);
        }
        let hits = idx.search(&query, 1);
        let brute: Option<usize> = corpus
            .iter()
            .enumerate()
            .max_by(|a, b| {
                cosine(a.1, &query)
                    .partial_cmp(&cosine(b.1, &query))
                    .unwrap()
            })
            .map(|(i, _)| i);
        let best_score = brute.map(|i| cosine(&corpus[i], &query)).unwrap_or(0.0);
        // Ties allowed: the returned hit must score as well as the argmax.
        prop_assert!((hits[0].score - best_score).abs() < 1e-4,
            "hit {} vs argmax {best_score}", hits[0].score);
    }

    /// Scores come back sorted and k caps the result length.
    #[test]
    fn flat_results_sorted_and_capped(corpus in corpus_strategy(), k in 1usize..10) {
        let mut idx = FlatIndex::new(8);
        for (i, v) in corpus.iter().enumerate() {
            idx.add(i, v);
        }
        let hits = idx.search(&[0.5; 8], k);
        prop_assert!(hits.len() <= k);
        prop_assert!(hits.len() <= corpus.len());
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// The blocked dot kernel agrees with the naive scalar loop to within
    /// 1e-5 (relative to the term-magnitude sum — summation order differs,
    /// so long vectors accumulate a few ulps of reassociation error).
    #[test]
    fn blocked_dot_matches_naive_scalar(
        pairs in proptest::collection::vec((-1.0f32..1.0, -1.0f32..1.0), 0..200)
    ) {
        let a: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let mut naive = 0.0f32;
        for (x, y) in a.iter().zip(&b) {
            naive += x * y;
        }
        let blocked = gar_vecindex::dot(&a, &b);
        let scale: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        prop_assert!(
            (blocked - naive).abs() <= 1e-5 * (1.0 + scale),
            "blocked {blocked} vs naive {naive} (scale {scale})"
        );
    }

    /// Batched flat search returns identical ids and ordering to per-query
    /// search, for any corpus, query set, k, and worker count.
    #[test]
    fn flat_search_batch_identical_to_search(
        corpus in corpus_strategy(),
        queries in proptest::collection::vec(proptest::collection::vec(-1.0f32..1.0, 8), 1..20),
        k in 0usize..12,
        threads in 1usize..5,
    ) {
        let mut idx = FlatIndex::new(8);
        for (i, v) in corpus.iter().enumerate() {
            idx.add(i, v);
        }
        let batch = idx.search_batch_threads(&queries, k, threads);
        prop_assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            let seq = idx.search(q, k);
            prop_assert_eq!(seq.len(), b.len());
            for (x, y) in seq.iter().zip(b) {
                prop_assert_eq!(x.id, y.id);
                prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    /// Batched IVF search returns identical ids and ordering to per-query
    /// search.
    #[test]
    fn ivf_search_batch_identical_to_search(
        corpus in corpus_strategy(),
        k in 0usize..12,
        threads in 1usize..5,
    ) {
        prop_assume!(corpus.len() >= 4);
        let mut ivf = IvfIndex::new(8, IvfConfig { nlist: 4, nprobe: 2, ..IvfConfig::default() });
        ivf.train(&corpus);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
        }
        let queries: Vec<Vec<f32>> = corpus.iter().take(9).cloned().collect();
        let batch = ivf.search_batch_threads(&queries, k, threads);
        for (q, b) in queries.iter().zip(&batch) {
            let seq = ivf.search(q, k);
            prop_assert_eq!(seq.len(), b.len());
            for (x, y) in seq.iter().zip(b) {
                prop_assert_eq!(x.id, y.id);
                prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    /// IVF probing every cell reproduces the exact flat result ids.
    #[test]
    fn ivf_full_probe_matches_flat(corpus in corpus_strategy()) {
        prop_assume!(corpus.len() >= 4);
        let nlist = 4usize;
        let mut ivf = IvfIndex::new(8, IvfConfig { nlist, nprobe: nlist, ..IvfConfig::default() });
        ivf.train(&corpus);
        let mut flat = FlatIndex::new(8);
        for (i, v) in corpus.iter().enumerate() {
            ivf.add(i, v);
            flat.add(i, v);
        }
        let q = &corpus[0];
        let a: Vec<f32> = ivf.search(q, 5).iter().map(|h| h.score).collect();
        let b: Vec<f32> = flat.search(q, 5).iter().map(|h| h.score).collect();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
