//! Benchmark statistics (Table 3 of the paper).

use crate::suite::{Benchmark, Example};

/// Statistics for one split of a benchmark.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SplitStats {
    /// Number of examples.
    pub total: usize,
    /// Queries with nested subqueries.
    pub nested: usize,
    /// Queries with `ORDER BY`.
    pub order_by: usize,
    /// Queries with `GROUP BY`.
    pub group_by: usize,
    /// Compound (set-operation) queries.
    pub compound: usize,
}

impl SplitStats {
    /// Compute over a split.
    pub fn compute(split: &[Example]) -> Self {
        let mut s = SplitStats {
            total: split.len(),
            ..SplitStats::default()
        };
        for ex in split {
            if ex.sql.has_nested_subquery() {
                s.nested += 1;
            }
            if ex.sql.order_by.is_some() {
                s.order_by += 1;
            }
            if !ex.sql.group_by.is_empty() {
                s.group_by += 1;
            }
            if ex.sql.is_compound() {
                s.compound += 1;
            }
        }
        s
    }
}

/// Full Table-3-style statistics for a benchmark.
#[derive(Debug, Clone, Default)]
pub struct BenchStats {
    /// Benchmark name.
    pub name: String,
    /// Number of databases.
    pub databases: usize,
    /// Average tables per database.
    pub avg_tables: f64,
    /// Per-split statistics: (split name, stats), only non-empty splits.
    pub splits: Vec<(String, SplitStats)>,
}

impl BenchStats {
    /// Compute the statistics of a benchmark.
    pub fn compute(b: &Benchmark) -> Self {
        let databases = b.dbs.len();
        let avg_tables = if databases == 0 {
            0.0
        } else {
            b.dbs.iter().map(|d| d.schema.table_count()).sum::<usize>() as f64
                / databases as f64
        };
        let mut splits = Vec::new();
        for (name, split) in [
            ("train", &b.train),
            ("dev", &b.dev),
            ("test", &b.test),
            ("samples", &b.samples),
        ] {
            if !split.is_empty() {
                splits.push((name.to_string(), SplitStats::compute(split)));
            }
        }
        BenchStats {
            name: b.name.clone(),
            databases,
            avg_tables,
            splits,
        }
    }

    /// Render as an aligned text table row set (one row per split).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {} databases, {:.2} avg tables/db\n",
            self.name, self.databases, self.avg_tables
        );
        out.push_str(
            "  split     total  nested  orderby  groupby  compound\n",
        );
        for (name, s) in &self.splits {
            out.push_str(&format!(
                "  {name:<9} {:<6} {:<7} {:<8} {:<8} {:<8}\n",
                s.total, s.nested, s.order_by, s.group_by, s.compound
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spider_sim::{spider_sim, SpiderSimConfig};

    #[test]
    fn stats_reflect_clause_mix() {
        let b = spider_sim(SpiderSimConfig {
            train_dbs: 3,
            val_dbs: 1,
            queries_per_db: 50,
            seed: 12,
        });
        let stats = BenchStats::compute(&b);
        assert_eq!(stats.databases, 4);
        assert!(stats.avg_tables >= 2.0);
        let train = &stats.splits[0].1;
        assert!(train.total > 100);
        // The SPIDER-like mix must show all clause families.
        assert!(train.nested > 0);
        assert!(train.order_by > 0);
        assert!(train.group_by > 0);
        // Compound queries are rarer but present at this scale.
        assert!(train.compound > 0, "{train:?}");
    }

    #[test]
    fn proportions_are_spider_like() {
        // SPIDER train: nested 14%, ORDER BY 21%, GROUP BY 23%, compound 6%.
        // Allow generous tolerances — the point is the *shape*.
        let b = spider_sim(SpiderSimConfig {
            train_dbs: 5,
            val_dbs: 1,
            queries_per_db: 56,
            seed: 13,
        });
        let s = SplitStats::compute(&b.train);
        let frac = |n: usize| n as f64 / s.total as f64;
        assert!(
            (0.05..=0.32).contains(&frac(s.nested)),
            "nested {}",
            frac(s.nested)
        );
        assert!(
            (0.08..=0.40).contains(&frac(s.order_by)),
            "orderby {}",
            frac(s.order_by)
        );
        assert!(
            (0.08..=0.40).contains(&frac(s.group_by)),
            "groupby {}",
            frac(s.group_by)
        );
        assert!(
            (0.01..=0.15).contains(&frac(s.compound)),
            "compound {}",
            frac(s.compound)
        );
    }

    #[test]
    fn render_contains_rows() {
        let b = spider_sim(SpiderSimConfig {
            train_dbs: 1,
            val_dbs: 1,
            queries_per_db: 10,
            seed: 14,
        });
        let r = BenchStats::compute(&b).render();
        assert!(r.contains("train"));
        assert!(r.contains("dev"));
    }
}
