//! Themed vocabulary pools for the synthetic benchmark schema generator.
//!
//! SPIDER's defining property is *cross-domain* coverage: 200 databases over
//! 138 domains. The simulator reproduces that by instantiating schemas from
//! domain themes — each theme defines entity tables with typed, annotated
//! columns and plausible foreign-key shapes, so generated schemas look like
//! SPIDER databases (average 4.1 tables, mixed key structures).

/// A column blueprint: name, type tag and whether it is a plausible filter
/// target for text values.
#[derive(Debug, Clone, Copy)]
pub struct ColSpec {
    /// Column identifier.
    pub name: &'static str,
    /// `'i'` int, `'f'` float, `'t'` text.
    pub ty: char,
}

/// An entity-table blueprint within a theme.
#[derive(Debug, Clone, Copy)]
pub struct TableSpec {
    /// Table identifier.
    pub name: &'static str,
    /// Non-key columns (an `<name>_id` key column is added automatically).
    pub cols: &'static [ColSpec],
}

/// A domain theme: a set of entity tables. Foreign keys are wired by the
/// schema generator (star or chain shapes, plus event tables with compound
/// keys).
#[derive(Debug, Clone, Copy)]
pub struct Theme {
    /// Domain name (becomes part of the database id).
    pub name: &'static str,
    /// Entity tables in the theme.
    pub tables: &'static [TableSpec],
}

const fn c(name: &'static str, ty: char) -> ColSpec {
    ColSpec { name, ty }
}

/// All built-in domain themes.
pub const THEMES: &[Theme] = &[
    Theme {
        name: "school",
        tables: &[
            TableSpec {
                name: "student",
                cols: &[c("name", 't'), c("age", 'i'), c("gpa", 'f'), c("city", 't')],
            },
            TableSpec {
                name: "teacher",
                cols: &[c("name", 't'), c("age", 'i'), c("salary", 'f'), c("subject", 't')],
            },
            TableSpec {
                name: "course",
                cols: &[c("title", 't'), c("credits", 'i'), c("level", 't')],
            },
            TableSpec {
                name: "department",
                cols: &[c("name", 't'), c("budget", 'f'), c("building", 't')],
            },
        ],
    },
    Theme {
        name: "concert",
        tables: &[
            TableSpec {
                name: "singer",
                cols: &[c("name", 't'), c("age", 'i'), c("country", 't'), c("sales", 'f')],
            },
            TableSpec {
                name: "stadium",
                cols: &[c("name", 't'), c("capacity", 'i'), c("city", 't')],
            },
            TableSpec {
                name: "concert",
                cols: &[c("theme", 't'), c("year", 'i'), c("attendance", 'i')],
            },
        ],
    },
    Theme {
        name: "flight",
        tables: &[
            TableSpec {
                name: "airline",
                cols: &[c("name", 't'), c("country", 't'), c("fleet_size", 'i')],
            },
            TableSpec {
                name: "airport",
                cols: &[c("name", 't'), c("city", 't'), c("elevation", 'i')],
            },
            TableSpec {
                name: "flight",
                cols: &[c("distance", 'i'), c("price", 'f'), c("duration", 'i')],
            },
        ],
    },
    Theme {
        name: "shop",
        tables: &[
            TableSpec {
                name: "product",
                cols: &[c("name", 't'), c("price", 'f'), c("category", 't'), c("stock", 'i')],
            },
            TableSpec {
                name: "customer",
                cols: &[c("name", 't'), c("age", 'i'), c("city", 't')],
            },
            TableSpec {
                name: "employee",
                cols: &[c("name", 't'), c("age", 'i'), c("salary", 'f')],
            },
            TableSpec {
                name: "store",
                cols: &[c("name", 't'), c("city", 't'), c("opening_year", 'i')],
            },
        ],
    },
    Theme {
        name: "hospital",
        tables: &[
            TableSpec {
                name: "doctor",
                cols: &[c("name", 't'), c("age", 'i'), c("specialty", 't'), c("salary", 'f')],
            },
            TableSpec {
                name: "patient",
                cols: &[c("name", 't'), c("age", 'i'), c("city", 't')],
            },
            TableSpec {
                name: "ward",
                cols: &[c("name", 't'), c("capacity", 'i'), c("floor", 'i')],
            },
        ],
    },
    Theme {
        name: "library",
        tables: &[
            TableSpec {
                name: "book",
                cols: &[c("title", 't'), c("year", 'i'), c("pages", 'i'), c("genre", 't')],
            },
            TableSpec {
                name: "author",
                cols: &[c("name", 't'), c("country", 't'), c("birth_year", 'i')],
            },
            TableSpec {
                name: "publisher",
                cols: &[c("name", 't'), c("city", 't'), c("founded", 'i')],
            },
        ],
    },
    Theme {
        name: "sports",
        tables: &[
            TableSpec {
                name: "player",
                cols: &[c("name", 't'), c("age", 'i'), c("goals", 'i'), c("position", 't')],
            },
            TableSpec {
                name: "team",
                cols: &[c("name", 't'), c("city", 't'), c("founded", 'i')],
            },
            TableSpec {
                name: "stadium",
                cols: &[c("name", 't'), c("capacity", 'i'), c("city", 't')],
            },
            TableSpec {
                name: "coach",
                cols: &[c("name", 't'), c("age", 'i'), c("experience", 'i')],
            },
        ],
    },
    Theme {
        name: "company",
        tables: &[
            TableSpec {
                name: "company",
                cols: &[c("name", 't'), c("revenue", 'f'), c("industry", 't'), c("founded", 'i')],
            },
            TableSpec {
                name: "office",
                cols: &[c("city", 't'), c("headcount", 'i'), c("opened", 'i')],
            },
            TableSpec {
                name: "manager",
                cols: &[c("name", 't'), c("age", 'i'), c("salary", 'f')],
            },
        ],
    },
    Theme {
        name: "museum",
        tables: &[
            TableSpec {
                name: "museum",
                cols: &[c("name", 't'), c("city", 't'), c("founded", 'i')],
            },
            TableSpec {
                name: "exhibit",
                cols: &[c("title", 't'), c("year", 'i'), c("value", 'f')],
            },
            TableSpec {
                name: "artist",
                cols: &[c("name", 't'), c("country", 't'), c("birth_year", 'i')],
            },
        ],
    },
    Theme {
        name: "restaurant",
        tables: &[
            TableSpec {
                name: "restaurant",
                cols: &[c("name", 't'), c("city", 't'), c("rating", 'f')],
            },
            TableSpec {
                name: "dish",
                cols: &[c("name", 't'), c("price", 'f'), c("calories", 'i')],
            },
            TableSpec {
                name: "chef",
                cols: &[c("name", 't'), c("age", 'i'), c("experience", 'i')],
            },
        ],
    },
];

/// Text value pools keyed by column name; used to fill tables and to
/// instantiate `WHERE` literals so queries select non-empty results.
pub fn text_pool(column: &str) -> &'static [&'static str] {
    match column {
        "city" => &[
            "paris", "london", "tokyo", "madrid", "berlin", "oslo", "rome", "cairo",
        ],
        "country" => &[
            "france", "spain", "japan", "brazil", "canada", "egypt", "norway",
        ],
        "name" | "title" => &[
            "aurora", "borealis", "cascade", "dynamo", "eclipse", "fjord", "granite",
            "horizon", "indigo", "juniper", "krypton", "lumen",
        ],
        "category" | "genre" | "industry" | "subject" | "specialty" | "theme" | "level"
        | "position" => &[
            "alpha", "beta", "gamma", "delta", "epsilon", "zeta",
        ],
        "building" => &["north hall", "south hall", "east wing"],
        _ => &["opal", "quartz", "topaz", "amber", "onyx"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn themes_are_nonempty_and_varied() {
        assert!(THEMES.len() >= 8);
        for t in THEMES {
            assert!(!t.tables.is_empty(), "{} has no tables", t.name);
            for tab in t.tables {
                assert!(!tab.cols.is_empty());
                for col in tab.cols {
                    assert!(matches!(col.ty, 'i' | 'f' | 't'));
                }
            }
        }
    }

    #[test]
    fn text_pools_are_nonempty() {
        for col in ["city", "country", "name", "category", "whatever"] {
            assert!(!text_pool(col).is_empty());
        }
    }

    #[test]
    fn theme_names_are_unique() {
        let mut names: Vec<&str> = THEMES.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), THEMES.len());
    }
}
