//! Stratified gold-query generation.
//!
//! Samples SQL queries over a generated database with a clause mix tuned to
//! SPIDER's published statistics (Table 3 of the paper: ~14% nested, ~21%
//! ORDER BY, ~23% GROUP BY, ~6% compound), covering every pattern the GAR
//! pipeline and its baselines must handle: filters, aggregates,
//! superlatives, grouped counts, FK joins, nested subqueries, negations,
//! LIKE patterns and set operations.

use crate::schema_gen::GeneratedDb;
use gar_engine::Datum;
use gar_schema::ForeignKey;
use gar_sql::ast::*;
use gar_sql::{fingerprint, normalize};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// Relative weights for the query patterns (indices match `PATTERNS`).
const WEIGHTS: [usize; 9] = [14, 12, 15, 16, 15, 10, 5, 8, 5];

/// Generate up to `n` distinct gold queries over the database.
pub fn generate_queries(db: &GeneratedDb, n: usize, rng: &mut StdRng) -> Vec<Query> {
    let mut out = Vec::with_capacity(n);
    let mut seen: HashSet<String> = HashSet::new();
    let mut attempts = 0usize;
    let max_attempts = n * 60;
    while out.len() < n && attempts < max_attempts {
        attempts += 1;
        let total: usize = WEIGHTS.iter().sum();
        let mut roll = rng.random_range(0..total);
        let mut pattern = 0usize;
        for (i, w) in WEIGHTS.iter().enumerate() {
            if roll < *w {
                pattern = i;
                break;
            }
            roll -= w;
        }
        let Some(q) = try_pattern(db, pattern, rng) else {
            continue;
        };
        if gar_schema::resolve_query(&db.schema, &q).is_err() {
            continue;
        }
        let fp = fingerprint(&normalize(&q));
        if seen.insert(fp) {
            out.push(q);
        }
    }
    out
}

fn try_pattern(db: &GeneratedDb, pattern: usize, rng: &mut StdRng) -> Option<Query> {
    match pattern {
        0 => simple_select(db, rng),
        1 => agg_select(db, rng),
        2 => order_by(db, rng),
        3 => group_by(db, rng),
        4 => join_select(db, rng),
        5 => nested(db, rng),
        6 => compound(db, rng),
        7 => negation(db, rng),
        8 => like_query(db, rng),
        _ => None,
    }
}

// ---------- helpers ----------

fn pick_table<'a>(db: &'a GeneratedDb, rng: &mut StdRng) -> &'a gar_schema::Table {
    let i = rng.random_range(0..db.schema.tables.len());
    &db.schema.tables[i]
}

fn pick_col<'a>(
    t: &'a gar_schema::Table,
    rng: &mut StdRng,
    pred: impl Fn(&gar_schema::Column) -> bool,
) -> Option<&'a gar_schema::Column> {
    let candidates: Vec<&gar_schema::Column> = t.columns.iter().filter(|c| pred(c)).collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.random_range(0..candidates.len())])
    }
}

fn not_key(t: &gar_schema::Table) -> impl Fn(&gar_schema::Column) -> bool + '_ {
    move |c| !c.name.ends_with("_id") && !t.primary_key.contains(&c.name)
}

fn literal_for(db: &GeneratedDb, table: &str, col: &str, rng: &mut StdRng) -> Option<Literal> {
    let vals = db.column_values(table, col);
    if vals.is_empty() {
        return None;
    }
    Some(match &vals[rng.random_range(0..vals.len())] {
        Datum::Int(v) => Literal::Int(*v),
        Datum::Float(v) => Literal::Float(*v),
        Datum::Text(s) => Literal::Str(s.clone()),
        Datum::Null => return None,
    })
}

fn cmp_for(ty: gar_schema::ColType, rng: &mut StdRng) -> CmpOp {
    if ty.is_numeric() {
        match rng.random_range(0..4) {
            0 => CmpOp::Eq,
            1 => CmpOp::Gt,
            2 => CmpOp::Lt,
            _ => CmpOp::Ge,
        }
    } else {
        CmpOp::Eq
    }
}

fn where_pred(
    db: &GeneratedDb,
    t: &gar_schema::Table,
    rng: &mut StdRng,
) -> Option<Predicate> {
    let col = pick_col(t, rng, not_key(t))?;
    let lit = literal_for(db, &t.name, &col.name, rng)?;
    Some(Predicate {
        lhs: ColExpr::plain(ColumnRef::new(&t.name, &col.name)),
        op: cmp_for(col.ty, rng),
        rhs: Operand::Lit(lit),
        rhs2: None,
    })
}

fn where_condition(
    db: &GeneratedDb,
    t: &gar_schema::Table,
    max_preds: usize,
    rng: &mut StdRng,
) -> Option<Condition> {
    let n = rng.random_range(1..=max_preds);
    let mut preds = Vec::with_capacity(n);
    let mut conns = Vec::new();
    for i in 0..n {
        preds.push(where_pred(db, t, rng)?);
        if i > 0 {
            conns.push(if rng.random_range(0..5) == 0 {
                BoolConn::Or
            } else {
                BoolConn::And
            });
        }
    }
    Some(Condition {
        preds: preds.clone(),
        conns,
    })
}

fn pick_fk<'a>(db: &'a GeneratedDb, rng: &mut StdRng) -> Option<&'a ForeignKey> {
    if db.schema.foreign_keys.is_empty() {
        return None;
    }
    let i = rng.random_range(0..db.schema.foreign_keys.len());
    Some(&db.schema.foreign_keys[i])
}

fn joined_from(fk: &ForeignKey) -> FromClause {
    FromClause {
        tables: vec![fk.to_table.clone(), fk.from_table.clone()],
        conds: vec![JoinCond {
            left: ColumnRef::new(&fk.to_table, &fk.to_column),
            right: ColumnRef::new(&fk.from_table, &fk.from_column),
        }],
    }
}

// ---------- patterns ----------

fn simple_select(db: &GeneratedDb, rng: &mut StdRng) -> Option<Query> {
    let t = pick_table(db, rng);
    let n_cols = rng.random_range(1..=2usize);
    let mut items = Vec::new();
    for _ in 0..n_cols {
        let c = pick_col(t, rng, |_| true)?;
        let item = ColExpr::plain(ColumnRef::new(&t.name, &c.name));
        if !items.contains(&item) {
            items.push(item);
        }
    }
    let mut q = Query::simple(&t.name, items);
    if rng.random_range(0..2) == 0 {
        q.where_ = where_condition(db, t, 2, rng);
    }
    if rng.random_range(0..5) == 0 {
        q.select.distinct = true;
    }
    Some(q)
}

fn agg_select(db: &GeneratedDb, rng: &mut StdRng) -> Option<Query> {
    let t = pick_table(db, rng);
    let item = match rng.random_range(0..5) {
        0 => ColExpr::count_star(),
        1 => {
            let c = pick_col(t, rng, |c| c.ty.is_numeric() && !c.name.ends_with("_id"))?;
            ColExpr::agg(AggFunc::Avg, ColumnRef::new(&t.name, &c.name))
        }
        2 => {
            let c = pick_col(t, rng, |c| c.ty.is_numeric() && !c.name.ends_with("_id"))?;
            ColExpr::agg(AggFunc::Sum, ColumnRef::new(&t.name, &c.name))
        }
        3 => {
            let c = pick_col(t, rng, |c| c.ty.is_numeric() && !c.name.ends_with("_id"))?;
            ColExpr::agg(AggFunc::Max, ColumnRef::new(&t.name, &c.name))
        }
        _ => {
            let c = pick_col(t, rng, |c| !c.name.ends_with("_id"))?;
            ColExpr {
                agg: Some(AggFunc::Count),
                distinct: true,
                col: ColumnRef::new(&t.name, &c.name),
            }
        }
    };
    let mut q = Query::simple(&t.name, vec![item]);
    if rng.random_range(0..2) == 0 {
        q.where_ = where_condition(db, t, 2, rng);
    }
    Some(q)
}

fn order_by(db: &GeneratedDb, rng: &mut StdRng) -> Option<Query> {
    // 50% joined superlative (the Fig. 1 shape), 50% single table.
    let (mut q, order_table) = if rng.random_range(0..2) == 0 {
        let fk = pick_fk(db, rng)?;
        let parent = db.schema.table(&fk.to_table)?;
        let sel_col = pick_col(parent, rng, not_key(parent))?;
        let mut q = Query::simple(
            &parent.name,
            vec![ColExpr::plain(ColumnRef::new(&parent.name, &sel_col.name))],
        );
        q.from = joined_from(fk);
        (q, fk.from_table.clone())
    } else {
        let t = pick_table(db, rng);
        let sel_col = pick_col(t, rng, not_key(t))?;
        (
            Query::simple(
                &t.name,
                vec![ColExpr::plain(ColumnRef::new(&t.name, &sel_col.name))],
            ),
            t.name.clone(),
        )
    };
    let ot = db.schema.table(&order_table)?;
    let key_col = pick_col(ot, rng, |c| c.ty.is_numeric() && !c.name.ends_with("_id"))?;
    let dir = if rng.random_range(0..3) == 0 {
        OrderDir::Asc
    } else {
        OrderDir::Desc
    };
    q.order_by = Some(OrderClause {
        items: vec![OrderItem {
            expr: ColExpr::plain(ColumnRef::new(&ot.name, &key_col.name)),
            dir,
        }],
    });
    q.limit = Some(match rng.random_range(0..4) {
        0 => 3,
        1 => 5,
        _ => 1,
    });
    Some(q)
}

fn group_by(db: &GeneratedDb, rng: &mut StdRng) -> Option<Query> {
    // Group an event/child table by its FK column (SPIDER's dominant shape),
    // or an entity table by a text category column.
    let use_fk = rng.random_range(0..2) == 0 && !db.schema.foreign_keys.is_empty();
    let (table, group_col) = if use_fk {
        let fk = pick_fk(db, rng)?;
        (fk.from_table.clone(), fk.from_column.clone())
    } else {
        let t = pick_table(db, rng);
        let c = pick_col(t, rng, |c| {
            matches!(c.ty, gar_schema::ColType::Text) && !c.name.ends_with("_id")
        })?;
        (t.name.clone(), c.name.clone())
    };
    let gcol = ColumnRef::new(&table, &group_col);
    let mut q = Query::simple(
        &table,
        vec![ColExpr::plain(gcol.clone()), ColExpr::count_star()],
    );
    q.group_by = vec![gcol];

    match rng.random_range(0..3) {
        0 => {
            // HAVING COUNT(*) >= k
            q.having = Some(Condition::single(Predicate {
                lhs: ColExpr::count_star(),
                op: CmpOp::Ge,
                rhs: Operand::Lit(Literal::Int(rng.random_range(2..5))),
                rhs2: None,
            }));
        }
        1 => {
            // ORDER BY COUNT(*) DESC LIMIT 1 — "the most" idiom.
            q.order_by = Some(OrderClause {
                items: vec![OrderItem {
                    expr: ColExpr::count_star(),
                    dir: OrderDir::Desc,
                }],
            });
            q.limit = Some(1);
            q.select.items.pop(); // project only the group key
        }
        _ => {}
    }
    Some(q)
}

fn join_select(db: &GeneratedDb, rng: &mut StdRng) -> Option<Query> {
    let fk = pick_fk(db, rng)?;
    let parent = db.schema.table(&fk.to_table)?;
    let child = db.schema.table(&fk.from_table)?;
    let sel_col = pick_col(parent, rng, not_key(parent))?;
    let mut q = Query::simple(
        &parent.name,
        vec![ColExpr::plain(ColumnRef::new(&parent.name, &sel_col.name))],
    );
    q.from = joined_from(fk);
    q.where_ = where_condition(db, child, 2, rng)
        .or_else(|| where_condition(db, parent, 1, rng));
    Some(q)
}

fn nested(db: &GeneratedDb, rng: &mut StdRng) -> Option<Query> {
    if rng.random_range(0..2) == 0 {
        // parent.key IN (SELECT fk FROM child WHERE measure > v)
        let fk = pick_fk(db, rng)?;
        let parent = db.schema.table(&fk.to_table)?;
        let child = db.schema.table(&fk.from_table)?;
        let sel_col = pick_col(parent, rng, not_key(parent))?;
        let mut sub = Query::simple(
            &child.name,
            vec![ColExpr::plain(ColumnRef::new(&child.name, &fk.from_column))],
        );
        sub.where_ = where_condition(db, child, 1, rng);
        let mut q = Query::simple(
            &parent.name,
            vec![ColExpr::plain(ColumnRef::new(&parent.name, &sel_col.name))],
        );
        q.where_ = Some(Condition::single(Predicate {
            lhs: ColExpr::plain(ColumnRef::new(&parent.name, &fk.to_column)),
            op: CmpOp::In,
            rhs: Operand::Subquery(Box::new(sub)),
            rhs2: None,
        }));
        Some(q)
    } else {
        // t.num > (SELECT AVG(num) FROM t)
        let t = pick_table(db, rng);
        let num = pick_col(t, rng, |c| c.ty.is_numeric() && !c.name.ends_with("_id"))?;
        let sel = pick_col(t, rng, not_key(t))?;
        let sub = Query::simple(
            &t.name,
            vec![ColExpr::agg(AggFunc::Avg, ColumnRef::new(&t.name, &num.name))],
        );
        let mut q = Query::simple(
            &t.name,
            vec![ColExpr::plain(ColumnRef::new(&t.name, &sel.name))],
        );
        q.where_ = Some(Condition::single(Predicate {
            lhs: ColExpr::plain(ColumnRef::new(&t.name, &num.name)),
            op: CmpOp::Gt,
            rhs: Operand::Subquery(Box::new(sub)),
            rhs2: None,
        }));
        Some(q)
    }
}

fn compound(db: &GeneratedDb, rng: &mut StdRng) -> Option<Query> {
    let t = pick_table(db, rng);
    let sel = pick_col(t, rng, not_key(t))?;
    let item = ColExpr::plain(ColumnRef::new(&t.name, &sel.name));
    let mut left = Query::simple(&t.name, vec![item.clone()]);
    left.where_ = Some(Condition::single(where_pred(db, t, rng)?));
    let mut right = Query::simple(&t.name, vec![item]);
    right.where_ = Some(Condition::single(where_pred(db, t, rng)?));
    let op = match rng.random_range(0..3) {
        0 => SetOp::Union,
        1 => SetOp::Intersect,
        _ => SetOp::Except,
    };
    left.compound = Some((op, Box::new(right)));
    Some(left)
}

fn negation(db: &GeneratedDb, rng: &mut StdRng) -> Option<Query> {
    if rng.random_range(0..2) == 0 {
        // != literal
        let t = pick_table(db, rng);
        let sel = pick_col(t, rng, not_key(t))?;
        let c = pick_col(t, rng, not_key(t))?;
        let lit = literal_for(db, &t.name, &c.name, rng)?;
        let mut q = Query::simple(
            &t.name,
            vec![ColExpr::plain(ColumnRef::new(&t.name, &sel.name))],
        );
        q.where_ = Some(Condition::single(Predicate {
            lhs: ColExpr::plain(ColumnRef::new(&t.name, &c.name)),
            op: CmpOp::Ne,
            rhs: Operand::Lit(lit),
            rhs2: None,
        }));
        Some(q)
    } else {
        // parent.key NOT IN (SELECT fk FROM child)
        let fk = pick_fk(db, rng)?;
        let parent = db.schema.table(&fk.to_table)?;
        let sel = pick_col(parent, rng, not_key(parent))?;
        let sub = Query::simple(
            &fk.from_table,
            vec![ColExpr::plain(ColumnRef::new(&fk.from_table, &fk.from_column))],
        );
        let mut q = Query::simple(
            &parent.name,
            vec![ColExpr::plain(ColumnRef::new(&parent.name, &sel.name))],
        );
        q.where_ = Some(Condition::single(Predicate {
            lhs: ColExpr::plain(ColumnRef::new(&parent.name, &fk.to_column)),
            op: CmpOp::NotIn,
            rhs: Operand::Subquery(Box::new(sub)),
            rhs2: None,
        }));
        Some(q)
    }
}

fn like_query(db: &GeneratedDb, rng: &mut StdRng) -> Option<Query> {
    let t = pick_table(db, rng);
    let text_col = pick_col(t, rng, |c| {
        matches!(c.ty, gar_schema::ColType::Text) && !c.name.ends_with("_id")
    })?;
    let sel = pick_col(t, rng, not_key(t))?;
    let lit = literal_for(db, &t.name, &text_col.name, rng)?;
    let pattern = match lit {
        Literal::Str(s) if s.len() >= 3 => {
            let prefix: String = s.chars().take(3).collect();
            format!("{prefix}%")
        }
        Literal::Str(s) => format!("{s}%"),
        _ => return None,
    };
    let mut q = Query::simple(
        &t.name,
        vec![ColExpr::plain(ColumnRef::new(&t.name, &sel.name))],
    );
    q.where_ = Some(Condition::single(Predicate {
        lhs: ColExpr::plain(ColumnRef::new(&t.name, &text_col.name)),
        op: if rng.random_range(0..4) == 0 {
            CmpOp::NotLike
        } else {
            CmpOp::Like
        },
        rhs: Operand::Lit(Literal::Str(pattern)),
        rhs2: None,
    }));
    Some(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::generate_db;
    use crate::vocab::THEMES;
    use gar_sql::{classify, clause_types, ClauseType, Difficulty};
    use rand::SeedableRng;

    fn corpus(n: usize, seed: u64) -> (GeneratedDb, Vec<Query>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = generate_db(&THEMES[seed as usize % THEMES.len()], 0, &mut rng);
        let queries = generate_queries(&db, n, &mut rng);
        (db, queries)
    }

    #[test]
    fn generates_requested_count() {
        let (_, qs) = corpus(120, 1);
        assert!(qs.len() >= 100, "only {} queries", qs.len());
    }

    #[test]
    fn all_queries_resolve_against_schema() {
        let (db, qs) = corpus(150, 2);
        for q in &qs {
            assert!(
                gar_schema::resolve_query(&db.schema, q).is_ok(),
                "{}",
                gar_sql::to_sql(q)
            );
        }
    }

    #[test]
    fn all_queries_parse_roundtrip() {
        let (_, qs) = corpus(150, 3);
        for q in &qs {
            let sql = gar_sql::to_sql(q);
            let back = gar_sql::parse(&sql).expect(&sql);
            assert!(gar_sql::exact_match(q, &back), "{sql}");
        }
    }

    #[test]
    fn all_queries_execute() {
        let (db, qs) = corpus(150, 4);
        for q in &qs {
            gar_engine::execute(&db.database, q)
                .unwrap_or_else(|e| panic!("{e}: {}", gar_sql::to_sql(q)));
        }
    }

    #[test]
    fn clause_mix_covers_all_types() {
        let (_, qs) = corpus(250, 5);
        let mut counts = std::collections::HashMap::new();
        for q in &qs {
            for ct in clause_types(q) {
                *counts.entry(ct).or_insert(0usize) += 1;
            }
        }
        for ct in ClauseType::all() {
            assert!(
                counts.get(&ct).copied().unwrap_or(0) > 0,
                "no queries of type {ct:?}: {counts:?}"
            );
        }
    }

    #[test]
    fn difficulty_mix_covers_all_levels() {
        let (_, qs) = corpus(300, 6);
        let mut counts = std::collections::HashMap::new();
        for q in &qs {
            *counts.entry(classify(q)).or_insert(0usize) += 1;
        }
        for d in Difficulty::all() {
            assert!(
                counts.get(&d).copied().unwrap_or(0) > 0,
                "no {d:?} queries: {counts:?}"
            );
        }
    }

    #[test]
    fn queries_are_distinct() {
        let (_, qs) = corpus(200, 7);
        let mut fps = HashSet::new();
        for q in &qs {
            assert!(fps.insert(fingerprint(&normalize(q))));
        }
    }

    #[test]
    fn many_filters_hit_rows() {
        // Literals are sampled from real data, so a good share of queries
        // with WHERE should return non-empty results.
        let (db, qs) = corpus(150, 8);
        let mut with_where = 0usize;
        let mut nonempty = 0usize;
        for q in &qs {
            if q.where_.is_some() && q.compound.is_none() {
                with_where += 1;
                if let Ok(rs) = gar_engine::execute(&db.database, q) {
                    if !rs.rows.is_empty() {
                        nonempty += 1;
                    }
                }
            }
        }
        assert!(with_where > 10);
        assert!(
            nonempty * 2 >= with_where,
            "{nonempty}/{with_where} non-empty"
        );
    }
}
