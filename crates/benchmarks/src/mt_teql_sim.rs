//! `mt_teql_sim` — the MT-TEQL benchmark simulator.
//!
//! MT-TEQL applies semantics-preserving metamorphic transformations to the
//! SPIDER validation set: utterance variations (synonym substitution,
//! politeness wrappers) and schema variations (identifier renamings). The
//! simulator reproduces both transformation classes over `spider_sim`'s
//! validation split and samples a test set, as the paper samples 10,000 of
//! MT-TEQL's 62,430 variants.

use crate::schema_gen::GeneratedDb;
use crate::suite::{Benchmark, Example};
use gar_nl::{perturb_utterance, Lexicon};
use gar_sql::ast::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration for the MT-TEQL simulator.
#[derive(Debug, Clone, Copy)]
pub struct MtTeqlConfig {
    /// Number of transformed test samples (paper: 10,000 sampled).
    pub samples: usize,
    /// Renamed schema variants generated per validation database.
    pub schema_variants: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for MtTeqlConfig {
    fn default() -> Self {
        MtTeqlConfig {
            samples: 600,
            schema_variants: 2,
            seed: 62430,
        }
    }
}

/// A consistent identifier renaming for one database.
#[derive(Debug, Clone, Default)]
pub struct RenameMap {
    /// Old table name → new table name.
    pub tables: HashMap<String, String>,
    /// (old table, old column) → new column name.
    pub columns: HashMap<(String, String), String>,
}

impl RenameMap {
    /// New name of a table (identity when unrenamed).
    pub fn table(&self, t: &str) -> String {
        self.tables.get(t).cloned().unwrap_or_else(|| t.to_string())
    }

    /// New name of a column (identity when unrenamed).
    pub fn column(&self, t: &str, c: &str) -> String {
        self.columns
            .get(&(t.to_string(), c.to_string()))
            .cloned()
            .unwrap_or_else(|| c.to_string())
    }
}

/// Build a renaming over a schema: ~30% of tables get an `_tbl` suffix and
/// ~20% of non-key columns get a `_field` suffix. NL annotations are kept —
/// MT-TEQL's renamings are semantics-preserving.
pub fn make_rename_map(db: &GeneratedDb, rng: &mut StdRng) -> RenameMap {
    let mut map = RenameMap::default();
    for t in &db.schema.tables {
        if rng.random_range(0..10) < 3 {
            map.tables
                .insert(t.name.clone(), format!("{}_tbl", t.name));
        }
        for c in &t.columns {
            let is_key = c.name.ends_with("_id") || t.primary_key.contains(&c.name);
            if !is_key && rng.random_range(0..10) < 2 {
                map.columns.insert(
                    (t.name.clone(), c.name.clone()),
                    format!("{}_field", c.name),
                );
            }
        }
    }
    map
}

/// Apply a renaming to a whole database (schema, FKs and physical tables),
/// producing a new database id `{old}_{variant}`.
pub fn rename_db(db: &GeneratedDb, map: &RenameMap, variant: usize) -> GeneratedDb {
    let mut out = db.clone();
    out.schema.name = format!("{}_mt{variant}", db.schema.name);
    for t in &mut out.schema.tables {
        let old_t = t.name.clone();
        for c in &mut t.columns {
            let new_c = map.column(&old_t, &c.name);
            c.name = new_c;
        }
        t.primary_key = t
            .primary_key
            .iter()
            .map(|k| map.column(&old_t, k))
            .collect();
        t.name = map.table(&old_t);
    }
    for fk in &mut out.schema.foreign_keys {
        fk.from_column = map.column(&fk.from_table, &fk.from_column);
        fk.to_column = map.column(&fk.to_table, &fk.to_column);
        fk.from_table = map.table(&fk.from_table);
        fk.to_table = map.table(&fk.to_table);
    }
    // Physical data: rename table keys and column headers.
    let mut tables = HashMap::new();
    for (name, mut data) in out.database.tables.drain() {
        for c in &mut data.columns {
            *c = map.column(&name, c);
        }
        let new_name = map.table(&name);
        data.name = new_name.clone();
        tables.insert(new_name, data);
    }
    out.database.tables = tables;
    out.database.schema = out.schema.clone();
    out
}

/// Apply a renaming to a query (recursively).
pub fn rename_query(q: &Query, map: &RenameMap) -> Query {
    let mut out = q.clone();
    rename_rec(&mut out, map);
    out
}

fn rename_colref(c: &mut ColumnRef, map: &RenameMap) {
    if let Some(t) = &c.table {
        if !c.is_star() {
            c.column = map.column(t, &c.column);
        }
        c.table = Some(map.table(t));
    }
}

fn rename_rec(q: &mut Query, map: &RenameMap) {
    for item in &mut q.select.items {
        rename_colref(&mut item.col, map);
    }
    for jc in &mut q.from.conds {
        rename_colref(&mut jc.left, map);
        rename_colref(&mut jc.right, map);
    }
    for t in &mut q.from.tables {
        *t = map.table(t);
    }
    let mut conds: Vec<&mut Condition> = Vec::new();
    if let Some(c) = &mut q.where_ {
        conds.push(c);
    }
    if let Some(c) = &mut q.having {
        conds.push(c);
    }
    for cond in conds {
        for p in &mut cond.preds {
            rename_colref(&mut p.lhs.col, map);
            if let Operand::Col(c) = &mut p.rhs {
                rename_colref(&mut c.col, map);
            }
            if let Operand::Subquery(sq) = &mut p.rhs {
                rename_rec(sq, map);
            }
            match &mut p.rhs2 {
                Some(Operand::Col(c)) => rename_colref(&mut c.col, map),
                Some(Operand::Subquery(sq)) => rename_rec(sq, map),
                _ => {}
            }
        }
    }
    for g in &mut q.group_by {
        rename_colref(g, map);
    }
    if let Some(ob) = &mut q.order_by {
        for item in &mut ob.items {
            rename_colref(&mut item.expr.col, map);
        }
    }
    if let Some((_, rhs)) = &mut q.compound {
        rename_rec(rhs, map);
    }
}

/// Build the `mt_teql_sim` benchmark from a spider_sim instance.
pub fn mt_teql_sim(spider: &Benchmark, config: MtTeqlConfig) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let lexicon = Lexicon::builtin();

    // Renamed schema variants for each validation database.
    let dev_db_names = Benchmark::split_dbs(&spider.dev);
    let mut dbs: Vec<GeneratedDb> = Vec::new();
    let mut variants: HashMap<String, Vec<(String, RenameMap)>> = HashMap::new();
    for name in &dev_db_names {
        let base = spider.db(name).expect("dev db in spider").clone();
        let mut vlist = Vec::new();
        for v in 0..config.schema_variants {
            let map = make_rename_map(&base, &mut rng);
            let renamed = rename_db(&base, &map, v);
            vlist.push((renamed.schema.name.clone(), map));
            dbs.push(renamed);
        }
        variants.insert(name.clone(), vlist);
        dbs.push(base);
    }

    // Sample transformed examples.
    let mut test = Vec::new();
    if !spider.dev.is_empty() {
        for i in 0..config.samples {
            let ex = &spider.dev[rng.random_range(0..spider.dev.len())];
            let kind = rng.random_range(0..10);
            let (db, sql) = if kind < 5 {
                // Utterance-only transformation.
                (ex.db.clone(), ex.sql.clone())
            } else {
                // Schema transformation (possibly with utterance transform).
                let vlist = &variants[&ex.db];
                let (vname, map) = &vlist[rng.random_range(0..vlist.len())];
                (vname.clone(), rename_query(&ex.sql, map))
            };
            let nl = if !(5..8).contains(&kind) {
                perturb_utterance(&ex.nl, &lexicon, config.seed ^ i as u64)
            } else {
                ex.nl.clone()
            };
            test.push(Example { db, nl, sql });
        }
    }

    Benchmark {
        name: "mt_teql_sim".to_string(),
        dbs,
        train: Vec::new(),
        dev: Vec::new(),
        test,
        samples: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spider_sim::{spider_sim, SpiderSimConfig};

    fn spider() -> Benchmark {
        spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 2,
            queries_per_db: 20,
            seed: 9,
        })
    }

    #[test]
    fn produces_requested_sample_count() {
        let s = spider();
        let mt = mt_teql_sim(&s, MtTeqlConfig {
            samples: 80,
            schema_variants: 2,
            seed: 1,
        });
        assert_eq!(mt.test.len(), 80);
    }

    #[test]
    fn renamed_queries_resolve_on_renamed_schema() {
        let s = spider();
        let mt = mt_teql_sim(&s, MtTeqlConfig {
            samples: 120,
            schema_variants: 2,
            seed: 2,
        });
        for ex in &mt.test {
            let db = mt.db(&ex.db).unwrap_or_else(|| panic!("missing db {}", ex.db));
            assert!(
                gar_schema::resolve_query(&db.schema, &ex.sql).is_ok(),
                "{} on {}",
                gar_sql::to_sql(&ex.sql),
                ex.db
            );
        }
    }

    #[test]
    fn renamed_queries_still_execute_with_same_results() {
        let s = spider();
        let base_name = Benchmark::split_dbs(&s.dev)[0].clone();
        let base = s.db(&base_name).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let map = make_rename_map(base, &mut rng);
        let renamed = rename_db(base, &map, 0);
        for ex in s.dev.iter().filter(|e| e.db == base_name).take(10) {
            let orig = gar_engine::execute(&base.database, &ex.sql).unwrap();
            let rq = rename_query(&ex.sql, &map);
            let new = gar_engine::execute(&renamed.database, &rq).unwrap();
            assert!(orig.matches(&new, ex.sql.order_by.is_some()));
        }
    }

    #[test]
    fn rename_map_changes_some_identifiers() {
        let s = spider();
        let base = &s.dbs[0];
        let mut any = false;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let map = make_rename_map(base, &mut rng);
            if !map.tables.is_empty() || !map.columns.is_empty() {
                any = true;
            }
        }
        assert!(any);
    }

    #[test]
    fn renamed_schema_is_valid() {
        let s = spider();
        let base = &s.dbs[0];
        let mut rng = StdRng::seed_from_u64(5);
        let map = make_rename_map(base, &mut rng);
        let renamed = rename_db(base, &map, 1);
        assert!(renamed.schema.validate().is_ok());
        assert_ne!(renamed.schema.name, base.schema.name);
    }
}
