//! `spider_sim` — the SPIDER benchmark simulator.
//!
//! Reproduces SPIDER's defining properties (Table 3 of the paper): many
//! cross-domain databases with ~4.1 tables each, a train/validation split
//! whose databases are disjoint ("a database schema is used exclusively for
//! either training or validation, but not both"), and a clause mix of
//! roughly 14% nested, 21% ORDER BY, 23% GROUP BY and 6% compound queries.
//! Sizes are scaled by configuration; proportions are preserved.

use crate::query_gen::generate_queries;
use crate::schema_gen::{generate_db, GeneratedDb};
use crate::suite::{Benchmark, Example};
use crate::vocab::THEMES;
use gar_nl::{NlConfig, NlGenerator};
use gar_sql::{classify, Difficulty, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the SPIDER simulator.
#[derive(Debug, Clone, Copy)]
pub struct SpiderSimConfig {
    /// Number of training databases (paper: 146).
    pub train_dbs: usize,
    /// Number of validation databases (paper: 20).
    pub val_dbs: usize,
    /// Gold queries generated per database (paper: ~59 train / ~52 val).
    pub queries_per_db: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for SpiderSimConfig {
    fn default() -> Self {
        SpiderSimConfig {
            train_dbs: 12,
            val_dbs: 4,
            queries_per_db: 56,
            seed: 2023,
        }
    }
}

/// Ambiguity (paraphrase aggressiveness) as a function of difficulty: the
/// harder the query, the further the human phrasing strays from the schema
/// wording — this is what makes hard queries hard for every system, as in
/// the paper's Table 1/4 gradients.
pub fn ambiguity_for(d: Difficulty) -> f64 {
    match d {
        Difficulty::Easy => 0.12,
        Difficulty::Medium => 0.28,
        Difficulty::Hard => 0.42,
        Difficulty::ExtraHard => 0.58,
    }
}

/// Render the NL utterance for a gold query using difficulty-scaled
/// ambiguity.
pub fn utterance_for(db: &GeneratedDb, q: &Query, seed: u64, salt: u64) -> String {
    let gen = NlGenerator::new(
        &db.schema,
        NlConfig {
            seed,
            ambiguity: ambiguity_for(classify(q)),
        },
    );
    gen.generate(q, salt)
}

/// Build the `spider_sim` benchmark.
pub fn spider_sim(config: SpiderSimConfig) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dbs = Vec::new();
    let mut train = Vec::new();
    let mut dev = Vec::new();

    let total_dbs = config.train_dbs + config.val_dbs;
    for i in 0..total_dbs {
        let theme = &THEMES[i % THEMES.len()];
        let variant = (i / THEMES.len()) as u64;
        let db = generate_db(theme, variant, &mut rng);
        let queries = generate_queries(&db, config.queries_per_db, &mut rng);
        let is_train = i < config.train_dbs;
        for (j, q) in queries.into_iter().enumerate() {
            let nl = utterance_for(&db, &q, config.seed ^ (i as u64), j as u64);
            let ex = Example {
                db: db.schema.name.clone(),
                nl,
                sql: q,
            };
            if is_train {
                train.push(ex);
            } else {
                dev.push(ex);
            }
        }
        dbs.push(db);
    }

    Benchmark {
        name: "spider_sim".to_string(),
        dbs,
        train,
        dev,
        test: Vec::new(),
        samples: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> Benchmark {
        spider_sim(SpiderSimConfig {
            train_dbs: 3,
            val_dbs: 2,
            queries_per_db: 30,
            seed: 5,
        })
    }

    #[test]
    fn train_and_dev_databases_are_disjoint() {
        let b = small();
        let train_dbs: HashSet<String> = Benchmark::split_dbs(&b.train).into_iter().collect();
        let dev_dbs: HashSet<String> = Benchmark::split_dbs(&b.dev).into_iter().collect();
        assert!(!train_dbs.is_empty() && !dev_dbs.is_empty());
        assert!(train_dbs.is_disjoint(&dev_dbs));
    }

    #[test]
    fn every_example_resolves_on_its_db() {
        let b = small();
        for ex in b.train.iter().chain(&b.dev) {
            let db = b.db(&ex.db).expect("db exists");
            assert!(gar_schema::resolve_query(&db.schema, &ex.sql).is_ok());
            assert!(!ex.nl.is_empty());
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.dev.iter().zip(&b.dev) {
            assert_eq!(x.nl, y.nl);
            assert_eq!(gar_sql::to_sql(&x.sql), gar_sql::to_sql(&y.sql));
        }
    }

    #[test]
    fn ambiguity_is_monotone_in_difficulty() {
        let ds = Difficulty::all();
        for w in ds.windows(2) {
            assert!(ambiguity_for(w[0]) < ambiguity_for(w[1]));
        }
    }

    #[test]
    fn difficulty_mix_present_in_dev() {
        let b = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 3,
            queries_per_db: 56,
            seed: 6,
        });
        let mut counts = std::collections::HashMap::new();
        for ex in &b.dev {
            *counts.entry(classify(&ex.sql)).or_insert(0usize) += 1;
        }
        assert!(counts.len() >= 3, "{counts:?}");
    }
}
