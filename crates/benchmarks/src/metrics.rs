//! Evaluation metrics (Section V-A4 of the paper).
//!
//! - **Translation accuracy** — exact set match after normalization (the
//!   SPIDER Exact Match Accuracy metric);
//! - **Execution accuracy** — result-set comparison against the in-repo
//!   execution engine;
//! - **Precision@K** and **MRR** over ranked candidate lists (reciprocal
//!   rank counted 0 when the gold is outside the top 10, as the paper
//!   specifies).

use gar_engine::{execute, Database};
use gar_sql::{exact_match, Query};

/// Exact-set-match translation accuracy for one prediction.
pub fn translation_match(pred: &Query, gold: &Query) -> bool {
    exact_match(pred, gold)
}

/// Execution accuracy for one prediction: both queries execute and their
/// result sets match (ordered iff the gold query orders).
pub fn execution_match(db: &Database, pred: &Query, gold: &Query) -> bool {
    let (Ok(p), Ok(g)) = (execute(db, pred), execute(db, gold)) else {
        return false;
    };
    let ordered = gold.order_by.is_some();
    p.matches(&g, ordered)
}

/// Precision@K over ranked candidate lists: the fraction of queries whose
/// gold SQL appears among the top-K candidates.
pub fn precision_at_k(ranked: &[Vec<Query>], golds: &[Query], k: usize) -> f64 {
    assert_eq!(ranked.len(), golds.len());
    if golds.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .zip(golds)
        .filter(|(cands, gold)| cands.iter().take(k).any(|c| exact_match(c, gold)))
        .count();
    hits as f64 / golds.len() as f64
}

/// Mean Reciprocal Rank with the paper's convention: rank 0 (contribution
/// 0) when the gold is not in the top 10.
pub fn mrr(ranked: &[Vec<Query>], golds: &[Query]) -> f64 {
    assert_eq!(ranked.len(), golds.len());
    if golds.is_empty() {
        return 0.0;
    }
    let sum: f64 = ranked
        .iter()
        .zip(golds)
        .map(|(cands, gold)| {
            cands
                .iter()
                .take(10)
                .position(|c| exact_match(c, gold))
                .map(|i| 1.0 / (i + 1) as f64)
                .unwrap_or(0.0)
        })
        .sum();
    sum / golds.len() as f64
}

/// An accuracy accumulator for grouped breakdowns (difficulty levels,
/// clause types, overall).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tally {
    /// Correct predictions.
    pub correct: usize,
    /// Total predictions.
    pub total: usize,
}

impl Tally {
    /// Record one outcome.
    pub fn record(&mut self, ok: bool) {
        self.total += 1;
        if ok {
            self.correct += 1;
        }
    }

    /// Accuracy in `[0, 1]` (0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_engine::Datum;
    use gar_schema::SchemaBuilder;
    use gar_sql::parse;

    fn q(s: &str) -> Query {
        parse(s).unwrap()
    }

    fn tiny_db() -> Database {
        let schema = SchemaBuilder::new("d")
            .table("t", |t| t.col_int("a").col_int("b").pk(&["a"]))
            .build();
        let mut db = Database::empty(schema);
        db.insert("t", vec![Datum::Int(1), Datum::Int(10)]);
        db.insert("t", vec![Datum::Int(2), Datum::Int(20)]);
        db
    }

    #[test]
    fn translation_match_ignores_values() {
        assert!(translation_match(
            &q("SELECT t.a FROM t WHERE t.b = 10"),
            &q("SELECT t.a FROM t WHERE t.b = 99"),
        ));
    }

    #[test]
    fn execution_match_catches_semantic_equivalents() {
        let db = tiny_db();
        // Different syntax, same result (b > 15 matches only row 2).
        assert!(execution_match(
            &db,
            &q("SELECT a FROM t WHERE b > 15"),
            &q("SELECT a FROM t WHERE b >= 20"),
        ));
        // Different results.
        assert!(!execution_match(
            &db,
            &q("SELECT a FROM t WHERE b > 5"),
            &q("SELECT a FROM t WHERE b > 15"),
        ));
    }

    #[test]
    fn execution_match_fails_on_error() {
        let db = tiny_db();
        assert!(!execution_match(
            &db,
            &q("SELECT a FROM missing"),
            &q("SELECT a FROM t"),
        ));
    }

    #[test]
    fn precision_at_k_counts_top_k_hits() {
        let golds = vec![q("SELECT t.a FROM t")];
        let ranked = vec![vec![
            q("SELECT t.b FROM t"),
            q("SELECT t.a FROM t"),
            q("SELECT t.a, t.b FROM t"),
        ]];
        assert_eq!(precision_at_k(&ranked, &golds, 1), 0.0);
        assert_eq!(precision_at_k(&ranked, &golds, 3), 1.0);
    }

    #[test]
    fn mrr_uses_reciprocal_rank_with_top10_cutoff() {
        let golds = vec![q("SELECT t.a FROM t"), q("SELECT t.b FROM t")];
        let mut long_list: Vec<Query> = (0..11).map(|_| q("SELECT t.c FROM t")).collect();
        long_list.push(q("SELECT t.b FROM t")); // rank 12: beyond cutoff
        let ranked = vec![
            vec![q("SELECT t.x FROM t"), q("SELECT t.a FROM t")], // rank 2
            long_list,
        ];
        let m = mrr(&ranked, &golds);
        assert!((m - 0.25).abs() < 1e-9, "{m}"); // (1/2 + 0) / 2
    }

    #[test]
    fn tally_accumulates() {
        let mut t = Tally::default();
        t.record(true);
        t.record(false);
        t.record(true);
        assert_eq!(t.total, 3);
        assert!((t.accuracy() - 2.0 / 3.0).abs() < 1e-9);
        let mut u = Tally::default();
        u.record(false);
        u.merge(&t);
        assert_eq!(u.total, 4);
        assert_eq!(u.correct, 2);
    }

    #[test]
    fn empty_tally_is_zero() {
        assert_eq!(Tally::default().accuracy(), 0.0);
    }
}
