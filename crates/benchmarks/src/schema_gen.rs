//! Schema generation and data population for the benchmark simulators.

use crate::vocab::{text_pool, ColSpec, Theme};
use gar_engine::{Database, Datum};
use gar_schema::{AnnotationSet, Schema, SchemaBuilder};
use rand::rngs::StdRng;
use rand::Rng;

/// A generated database: schema, populated data, and (possibly empty) join
/// annotations.
#[derive(Debug, Clone)]
pub struct GeneratedDb {
    /// The schema.
    pub schema: Schema,
    /// Populated physical data (backs execution accuracy).
    pub database: Database,
    /// GAR-J join annotations (empty unless curated by the suite).
    pub annotations: AnnotationSet,
}

impl GeneratedDb {
    /// Distinct non-null values of a column, in storage order. Query
    /// generation samples literals from here so filters select real rows.
    pub fn column_values(&self, table: &str, column: &str) -> Vec<Datum> {
        let Some(t) = self.database.table(table) else {
            return Vec::new();
        };
        let Some(i) = t.col_index(column) else {
            return Vec::new();
        };
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &t.rows {
            let v = &row[i];
            if !v.is_null() && seen.insert(v.canon_key()) {
                out.push(v.clone());
            }
        }
        out
    }
}

/// Generate a SPIDER-style database from a theme: a subset of the theme's
/// entity tables plus one or two event/bridge tables with compound keys and
/// foreign keys, then populate it with consistent synthetic rows.
pub fn generate_db(theme: &Theme, variant: u64, rng: &mut StdRng) -> GeneratedDb {
    let db_name = format!("{}_{variant}", theme.name);

    // Choose 2..=n entity tables.
    let n_entities = rng.random_range(2..=theme.tables.len().min(4));
    let mut chosen: Vec<usize> = (0..theme.tables.len()).collect();
    for i in (1..chosen.len()).rev() {
        let j = rng.random_range(0..=i);
        chosen.swap(i, j);
    }
    chosen.truncate(n_entities);
    chosen.sort_unstable();

    let mut builder = SchemaBuilder::new(&db_name);
    let mut entity_names: Vec<&'static str> = Vec::new();
    for &ti in &chosen {
        let spec = theme.tables[ti];
        entity_names.push(spec.name);
        builder = builder.table(spec.name, |mut t| {
            let key = format!("{}_id", spec.name);
            t = t.col_int(&key).pk(&[&key]);
            for col in spec.cols {
                t = add_col(t, col);
            }
            t
        });
    }

    // Event/bridge tables between entity pairs (these create the join paths
    // and compound keys the paper's examples rely on).
    let n_events = if entity_names.len() >= 2 {
        rng.random_range(1..=2usize)
    } else {
        0
    };
    let mut event_specs: Vec<(String, &'static str, &'static str, String)> = Vec::new();
    for e in 0..n_events {
        let a = entity_names[rng.random_range(0..entity_names.len())];
        let mut b = entity_names[rng.random_range(0..entity_names.len())];
        if a == b {
            b = entity_names[entity_names.len().div_ceil(2) % entity_names.len()];
            if a == b {
                continue;
            }
        }
        let measure = ["amount", "score", "bonus", "quantity"][e % 4].to_string();
        let ev_name = format!("{a}_{b}_record");
        if event_specs.iter().any(|(n, _, _, _)| *n == ev_name) {
            continue;
        }
        builder = builder.table(&ev_name, |t| {
            let ka = format!("{a}_id");
            let kb = format!("{b}_id");
            t.col_int(&ka)
                .col_int(&kb)
                .col_int("year")
                .col_float(&measure)
                .pk(&[&ka, "year"])
        });
        builder = builder.fk(&ev_name, &format!("{a}_id"), a, &format!("{a}_id"));
        builder = builder.fk(&ev_name, &format!("{b}_id"), b, &format!("{b}_id"));
        event_specs.push((ev_name, a, b, measure));
    }

    let schema = builder.build();
    let database = populate(&schema, rng);

    GeneratedDb {
        schema,
        database,
        annotations: AnnotationSet::empty(),
    }
}

/// Curate generic GAR-J join annotations from the schema's foreign keys
/// (the "manual annotation" step of Section IV-A, automated for the
/// simulated benchmarks: one annotation per FK, describing the child-of-
/// parent relationship and keying the asterisk on the child entity).
pub fn curate_annotations(db: &mut GeneratedDb) {
    for fk in &db.schema.foreign_keys {
        let child_nl = db
            .schema
            .table(&fk.from_table)
            .map(|t| t.nl_name.clone())
            .unwrap_or_else(|| fk.from_table.clone());
        let parent_nl = db
            .schema
            .table(&fk.to_table)
            .map(|t| t.nl_name.clone())
            .unwrap_or_else(|| fk.to_table.clone());
        db.annotations.add(
            &fk.to_table,
            &fk.from_table,
            &format!("{}.{}", fk.to_table, fk.to_column),
            &format!("{}.{}", fk.from_table, fk.from_column),
            &format!("the {child_nl} belong to the {parent_nl}"),
            &child_nl,
        );
    }
}

fn add_col(
    t: gar_schema::builder::TableBuilder,
    col: &ColSpec,
) -> gar_schema::builder::TableBuilder {
    match col.ty {
        'i' => t.col_int(col.name),
        'f' => t.col_float(col.name),
        _ => t.col_text(col.name),
    }
}

/// Populate every table of a schema with synthetic rows. Foreign-key columns
/// reference existing parent keys; text columns draw from the shared pools
/// (so `WHERE` literals sampled from the data hit real rows); numeric
/// columns use name-aware ranges.
pub fn populate(schema: &Schema, rng: &mut StdRng) -> Database {
    let mut db = Database::empty(schema.clone());

    // Parents first (tables that are FK targets), then referencing tables.
    let mut order: Vec<&str> = schema.tables.iter().map(|t| t.name.as_str()).collect();
    order.sort_by_key(|t| {
        schema
            .foreign_keys
            .iter()
            .filter(|fk| fk.from_table == *t)
            .count()
    });

    for tname in order {
        let table = schema.table(tname).expect("ordered over schema tables");
        let n_rows = rng.random_range(24..=60usize);
        for i in 0..n_rows {
            let mut row = Vec::with_capacity(table.columns.len());
            for col in &table.columns {
                // FK column: sample a parent key.
                let fk = schema
                    .foreign_keys
                    .iter()
                    .find(|fk| fk.from_table == tname && fk.from_column == col.name);
                if let Some(fk) = fk {
                    let parents = db
                        .table(&fk.to_table)
                        .map(|t| t.rows.len())
                        .unwrap_or(0);
                    if parents > 0 {
                        row.push(Datum::Int(rng.random_range(1..=parents as i64)));
                    } else {
                        row.push(Datum::Int(1));
                    }
                    continue;
                }
                // Primary key prefix column named <table>_id: sequential.
                if table.primary_key.first().map(String::as_str) == Some(col.name.as_str())
                    && table.primary_key.len() == 1
                {
                    row.push(Datum::Int(i as i64 + 1));
                    continue;
                }
                row.push(random_value(&col.name, col.ty, rng));
            }
            db.insert(tname, row);
        }
    }
    db
}

fn random_value(name: &str, ty: gar_schema::ColType, rng: &mut StdRng) -> Datum {
    use gar_schema::ColType;
    match ty {
        ColType::Text => {
            let pool = text_pool(name);
            Datum::Text(pool[rng.random_range(0..pool.len())].to_string())
        }
        ColType::Int => {
            let (lo, hi) = int_range(name);
            Datum::Int(rng.random_range(lo..=hi))
        }
        ColType::Float => {
            let (lo, hi) = float_range(name);
            let v: f64 = rng.random_range(lo..hi);
            Datum::Float((v * 100.0).round() / 100.0)
        }
    }
}

fn int_range(name: &str) -> (i64, i64) {
    match name {
        "age" => (18, 70),
        n if n.contains("year") || n == "founded" || n == "opened" => (1960, 2023),
        "capacity" => (1_000, 90_000),
        "elevation" => (0, 4_000),
        "attendance" | "headcount" | "population" => (100, 50_000),
        "distance" => (100, 9_000),
        "duration" => (30, 900),
        "floor" => (1, 12),
        "credits" => (1, 10),
        "pages" => (80, 1200),
        "goals" | "experience" | "stock" | "fleet_size" | "calories" => (0, 800),
        _ => (1, 1_000),
    }
}

fn float_range(name: &str) -> (f64, f64) {
    match name {
        "gpa" => (1.0, 4.0),
        "rating" => (1.0, 5.0),
        "price" | "amount" => (1.0, 500.0),
        "salary" | "bonus" => (1_000.0, 20_000.0),
        "budget" | "revenue" | "value" | "sales" => (10_000.0, 5_000_000.0),
        _ => (0.0, 1_000.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::THEMES;
    use rand::SeedableRng;

    fn gen(seed: u64) -> GeneratedDb {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_db(&THEMES[0], 0, &mut rng)
    }

    #[test]
    fn generated_schema_is_valid() {
        let g = gen(1);
        assert!(g.schema.validate().is_ok());
        assert!(g.schema.table_count() >= 2);
    }

    #[test]
    fn all_tables_are_populated() {
        let g = gen(2);
        for t in &g.schema.tables {
            let rows = g.database.table(&t.name).unwrap().rows.len();
            assert!(rows >= 24, "{} has {rows} rows", t.name);
        }
    }

    #[test]
    fn fk_values_reference_existing_parents() {
        let g = gen(3);
        for fk in &g.schema.foreign_keys {
            let child = g.database.table(&fk.from_table).unwrap();
            let ci = child.col_index(&fk.from_column).unwrap();
            let parent = g.database.table(&fk.to_table).unwrap();
            let pi = parent.col_index(&fk.to_column).unwrap();
            let parent_keys: std::collections::HashSet<String> = parent
                .rows
                .iter()
                .map(|r| r[pi].canon_key())
                .collect();
            for row in &child.rows {
                assert!(
                    parent_keys.contains(&row[ci].canon_key()),
                    "dangling FK {}.{}",
                    fk.from_table,
                    fk.from_column
                );
            }
        }
    }

    #[test]
    fn event_tables_have_compound_keys_and_joins() {
        // Generate several DBs; at least one must contain a compound-keyed
        // event table with two FKs (the Fig. 1 shape).
        let mut found = false;
        for seed in 0..10 {
            let g = gen(seed);
            for t in &g.schema.tables {
                if t.has_compound_key() {
                    let fks = g
                        .schema
                        .foreign_keys
                        .iter()
                        .filter(|fk| fk.from_table == t.name)
                        .count();
                    if fks >= 2 {
                        found = true;
                    }
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn column_values_returns_real_data() {
        let g = gen(5);
        let t = &g.schema.tables[0];
        let col = &t.columns[1];
        let vals = g.column_values(&t.name, &col.name);
        assert!(!vals.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.database.total_rows(), b.database.total_rows());
    }

    #[test]
    fn different_variants_have_different_names() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = generate_db(&THEMES[1], 3, &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let b = generate_db(&THEMES[1], 4, &mut rng);
        assert_ne!(a.schema.name, b.schema.name);
    }
}
