//! `geo_sim` — the GEO benchmark simulator.
//!
//! GEO is a single-database benchmark about United States geography with
//! train/validation/test splits all over the same database and compound
//! queries entirely absent (Table 3). The simulator builds one geography
//! schema, populates it, and generates the three splits with GEO's relative
//! sizes (585/47/280, scaled by `queries` — the scale factor preserves the
//! split ratio).

use crate::query_gen::generate_queries;
use crate::schema_gen::{populate, GeneratedDb};
use crate::spider_sim::utterance_for;
use crate::suite::{Benchmark, Example};
use gar_schema::{AnnotationSet, SchemaBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the GEO simulator.
#[derive(Debug, Clone, Copy)]
pub struct GeoSimConfig {
    /// Train-split size (paper: 585).
    pub train: usize,
    /// Validation-split size (paper: 47).
    pub dev: usize,
    /// Test-split size (paper: 280).
    pub test: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for GeoSimConfig {
    fn default() -> Self {
        GeoSimConfig {
            train: 180,
            dev: 16,
            test: 90,
            seed: 1996, // the year of GEO's inductive-logic origins
        }
    }
}

/// The single geography database.
pub fn geo_db(rng: &mut StdRng) -> GeneratedDb {
    let schema = SchemaBuilder::new("geobase")
        .table("state", |t| {
            t.col_int("state_id")
                .col_text("name")
                .col_int("population")
                .col_float("area")
                .col_text("capital")
                .pk(&["state_id"])
        })
        .table("river", |t| {
            t.col_int("river_id")
                .col_text("name")
                .col_int("length")
                .col_int("state_id")
                .col_nl("state id")
                .pk(&["river_id"])
        })
        .table("mountain", |t| {
            t.col_int("mountain_id")
                .col_text("name")
                .col_int("height")
                .col_int("state_id")
                .pk(&["mountain_id"])
        })
        .fk("river", "state_id", "state", "state_id")
        .fk("mountain", "state_id", "state", "state_id")
        .build();
    let database = populate(&schema, rng);
    GeneratedDb {
        schema,
        database,
        annotations: AnnotationSet::empty(),
    }
}

/// Build the `geo_sim` benchmark.
pub fn geo_sim(config: GeoSimConfig) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let db = geo_db(&mut rng);
    let total = config.train + config.dev + config.test;
    let queries = generate_queries(&db, total, &mut rng);

    let mut examples: Vec<Example> = queries
        .into_iter()
        .enumerate()
        .map(|(j, q)| {
            let nl = utterance_for(&db, &q, config.seed, j as u64);
            Example {
                db: db.schema.name.clone(),
                nl,
                sql: q,
            }
        })
        .collect();

    // GEO has no compound queries (Table 3).
    examples.retain(|e| !e.sql.is_compound());

    let train_n = config.train.min(examples.len());
    let dev_n = config.dev.min(examples.len().saturating_sub(train_n));
    let rest: Vec<Example> = examples.split_off(train_n + dev_n);
    let dev: Vec<Example> = examples.split_off(train_n);
    let train = examples;
    let mut test = rest;
    test.truncate(config.test);

    Benchmark {
        name: "geo_sim".to_string(),
        dbs: vec![db],
        train,
        dev,
        test,
        samples: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Benchmark {
        geo_sim(GeoSimConfig {
            train: 60,
            dev: 8,
            test: 30,
            seed: 3,
        })
    }

    #[test]
    fn single_database_shared_by_all_splits() {
        let b = small();
        assert_eq!(b.dbs.len(), 1);
        for ex in b.train.iter().chain(&b.dev).chain(&b.test) {
            assert_eq!(ex.db, "geobase");
        }
    }

    #[test]
    fn split_sizes_respected() {
        let b = small();
        assert_eq!(b.train.len(), 60);
        assert_eq!(b.dev.len(), 8);
        assert!(b.test.len() <= 30 && b.test.len() > 10);
    }

    #[test]
    fn no_compound_queries() {
        let b = small();
        for ex in b.train.iter().chain(&b.dev).chain(&b.test) {
            assert!(!ex.sql.is_compound());
        }
    }

    #[test]
    fn eval_split_is_test_when_dev_nonempty() {
        // GEO evaluates on its *test* set in the paper; the suite exposes
        // dev for training-protocol parity but experiments use `test`.
        let b = small();
        assert!(!b.test.is_empty());
    }

    #[test]
    fn queries_execute_on_geobase() {
        let b = small();
        let db = b.db("geobase").unwrap();
        for ex in b.test.iter().take(20) {
            assert!(gar_engine::execute(&db.database, &ex.sql).is_ok());
        }
    }
}
