//! # gar-benchmarks — synthetic NLIDB benchmark suites and metrics
//!
//! The paper evaluates GAR on four benchmarks — SPIDER, GEO, MT-TEQL and
//! QBEN — none of which is available in this offline environment. This
//! crate builds distribution-faithful simulators for all four (see
//! DESIGN.md §1 for the substitution argument):
//!
//! - [`spider_sim`] — cross-domain, multi-database, train/val DB-disjoint,
//!   SPIDER-like clause mix;
//! - [`geo_sim`] — one geography database, three splits, no compounds;
//! - [`mt_teql_sim`] — metamorphic utterance and schema transformations of
//!   spider_sim's validation split;
//! - [`qben_sim`] — seven dual-role-join databases with curated GAR-J
//!   annotations, where join semantics are not textually inferable.
//!
//! Plus the evaluation [`metrics`] of Section V-A4 (exact set match,
//! execution accuracy, Precision@K, MRR) and Table-3 [`stats`].

#![warn(missing_docs)]

pub mod geo_sim;
pub mod metrics;
pub mod mt_teql_sim;
pub mod qben_sim;
pub mod query_gen;
pub mod schema_gen;
pub mod spider_sim;
pub mod stats;
pub mod suite;
pub mod vocab;

pub use geo_sim::{geo_sim, GeoSimConfig};
pub use metrics::{execution_match, mrr, precision_at_k, translation_match, Tally};
pub use mt_teql_sim::{mt_teql_sim, MtTeqlConfig};
pub use qben_sim::{qben_sim, QbenSimConfig};
pub use query_gen::generate_queries;
pub use schema_gen::{curate_annotations, generate_db, populate, GeneratedDb};
pub use spider_sim::{ambiguity_for, spider_sim, utterance_for, SpiderSimConfig};
pub use stats::{BenchStats, SplitStats};
pub use suite::{Benchmark, Example};
