//! `qben_sim` — the QBEN benchmark simulator.
//!
//! QBEN (Section V-E) tests queries whose join semantics are "more than
//! simple compositions of table/column names": every database here has an
//! event table with **two parallel foreign keys into the same parent**
//! (source/destination airports, home/away clubs, sender/recipient users,
//! ...). The NL question names the *role* ("arriving flights"), but the two
//! candidate SQL queries differ only in which foreign-key column they join
//! on — textual schema matching cannot tell them apart. GAR-J's join
//! annotations carry exactly the missing role semantics.
//!
//! Seven databases, with curated join annotations, a sample split and a
//! component-similar test split (paper: 293 samples / 200 test).

use crate::schema_gen::{populate, GeneratedDb};
use crate::suite::{Benchmark, Example};
use gar_engine::Datum;
use gar_schema::SchemaBuilder;
use gar_sql::ast::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One dual-role domain blueprint.
struct Domain {
    db: &'static str,
    parent: &'static str,
    parent_cols: &'static [&'static str], // text cols after name
    event: &'static str,
    event_plural: &'static str,
    measure: &'static str,
    roles: [Role; 2],
}

/// One foreign-key role of the event table.
struct Role {
    column: &'static str,
    /// The adjective used in NL ("arriving").
    word: &'static str,
    /// GAR-J join description.
    description: &'static str,
}

const DOMAINS: &[Domain] = &[
    Domain {
        db: "flight_net",
        parent: "airport",
        parent_cols: &["city"],
        event: "flight",
        event_plural: "flights",
        measure: "distance",
        roles: [
            Role {
                column: "dest_airport",
                word: "arriving",
                description: "the arriving flights of the airport",
            },
            Role {
                column: "source_airport",
                word: "departing",
                description: "the departing flights of the airport",
            },
        ],
    },
    Domain {
        db: "bank_net",
        parent: "account",
        parent_cols: &["city"],
        event: "transfer",
        event_plural: "transfers",
        measure: "amount",
        roles: [
            Role {
                column: "to_account",
                word: "incoming",
                description: "the incoming transfers of the account",
            },
            Role {
                column: "from_account",
                word: "outgoing",
                description: "the outgoing transfers of the account",
            },
        ],
    },
    Domain {
        db: "soccer_league",
        parent: "club",
        parent_cols: &["city"],
        event: "game",
        event_plural: "games",
        measure: "attendance",
        roles: [
            Role {
                column: "home_club",
                word: "home",
                description: "the home games of the club",
            },
            Role {
                column: "away_club",
                word: "away",
                description: "the away games of the club",
            },
        ],
    },
    Domain {
        db: "chess_club",
        parent: "player",
        parent_cols: &["country"],
        event: "match",
        event_plural: "matches",
        measure: "moves",
        roles: [
            Role {
                column: "white_player",
                word: "white",
                description: "the white matches of the player",
            },
            Role {
                column: "black_player",
                word: "black",
                description: "the black matches of the player",
            },
        ],
    },
    Domain {
        db: "shipping_net",
        parent: "port",
        parent_cols: &["country"],
        event: "voyage",
        event_plural: "voyages",
        measure: "cargo",
        roles: [
            Role {
                column: "dest_port",
                word: "arriving",
                description: "the arriving voyages of the port",
            },
            Role {
                column: "origin_port",
                word: "departing",
                description: "the departing voyages of the port",
            },
        ],
    },
    Domain {
        db: "email_sys",
        parent: "user",
        parent_cols: &["city"],
        event: "message",
        event_plural: "messages",
        measure: "length",
        roles: [
            Role {
                column: "recipient",
                word: "received",
                description: "the received messages of the user",
            },
            Role {
                column: "sender",
                word: "sent",
                description: "the sent messages of the user",
            },
        ],
    },
    Domain {
        db: "metro_net",
        parent: "station",
        parent_cols: &["city"],
        event: "trip",
        event_plural: "trips",
        measure: "duration",
        roles: [
            Role {
                column: "end_station",
                word: "ending",
                description: "the ending trips of the station",
            },
            Role {
                column: "start_station",
                word: "starting",
                description: "the starting trips of the station",
            },
        ],
    },
];

fn build_domain_db(d: &Domain, rng: &mut StdRng) -> GeneratedDb {
    let pk = format!("{}_id", d.parent);
    let mut b = SchemaBuilder::new(d.db).table(d.parent, |mut t| {
        t = t.col_int(&pk).pk(&[&pk]).col_text("name");
        for c in d.parent_cols {
            t = t.col_text(c);
        }
        t
    });
    let ek = format!("{}_id", d.event);
    b = b.table(d.event, |t| {
        t.col_int(&ek)
            .pk(&[&ek])
            .col_int(d.roles[0].column)
            .col_int(d.roles[1].column)
            .col_int(d.measure)
            .col_int("year")
    });
    for role in &d.roles {
        b = b.fk(d.event, role.column, d.parent, &pk);
    }
    let schema = b.build();
    let database = populate(&schema, rng);

    let mut gdb = GeneratedDb {
        schema,
        database,
        annotations: gar_schema::AnnotationSet::empty(),
    };
    for role in &d.roles {
        gdb.annotations.add(
            d.parent,
            d.event,
            &format!("{}.{}", d.parent, pk),
            &format!("{}.{}", d.event, role.column),
            role.description,
            d.event,
        );
    }
    gdb
}

/// A query pattern over a role; `value_salt` varies literals so sample and
/// test instances are component-similar but not identical.
fn role_query(
    d: &Domain,
    role: &Role,
    pattern: usize,
    db: &GeneratedDb,
    rng: &mut StdRng,
) -> Option<(String, Query)> {
    let pk = format!("{}_id", d.parent);
    let from = FromClause {
        tables: vec![d.parent.to_string(), d.event.to_string()],
        conds: vec![JoinCond {
            left: ColumnRef::new(d.parent, &pk),
            right: ColumnRef::new(d.event, role.column),
        }],
    };
    let name_col = ColumnRef::new(d.parent, "name");
    let measure_col = ColumnRef::new(d.event, d.measure);

    let pick_name = |db: &GeneratedDb, rng: &mut StdRng| -> Option<String> {
        let vals = db.column_values(d.parent, "name");
        if vals.is_empty() {
            return None;
        }
        match &vals[rng.random_range(0..vals.len())] {
            Datum::Text(s) => Some(s.clone()),
            _ => None,
        }
    };

    Some(match pattern {
        0 => {
            // Which parent has the most <role> events?
            let mut q = Query::simple(d.parent, vec![ColExpr::plain(name_col.clone())]);
            q.from = from;
            q.group_by = vec![name_col];
            q.order_by = Some(OrderClause {
                items: vec![OrderItem {
                    expr: ColExpr::count_star(),
                    dir: OrderDir::Desc,
                }],
            });
            q.limit = Some(1);
            let nl = format!(
                "What is the name of the {} with the most {} {}?",
                d.parent, role.word, d.event_plural
            );
            (nl, q)
        }
        1 => {
            // How many <role> events does parent X have?
            let name = pick_name(db, rng)?;
            let mut q = Query::simple(d.parent, vec![ColExpr::count_star()]);
            q.from = from;
            q.where_ = Some(Condition::single(Predicate {
                lhs: ColExpr::plain(name_col),
                op: CmpOp::Eq,
                rhs: Operand::Lit(Literal::Str(name.clone())),
                rhs2: None,
            }));
            let nl = format!(
                "How many {} {} of the {} whose name is {name} are there?",
                role.word, d.event_plural, d.parent
            );
            (nl, q)
        }
        2 => {
            // Names of parents with a <role> event whose measure > v.
            let v = rng.random_range(100..500);
            let mut q = Query::simple(d.parent, vec![ColExpr::plain(name_col)]);
            q.select.distinct = true;
            q.from = from;
            q.where_ = Some(Condition::single(Predicate {
                lhs: ColExpr::plain(measure_col),
                op: CmpOp::Gt,
                rhs: Operand::Lit(Literal::Int(v)),
                rhs2: None,
            }));
            let nl = format!(
                "List the different names of the {} with {} {} whose {} is greater than {v}.",
                d.parent, role.word, d.event_plural, d.measure
            );
            (nl, q)
        }
        3 => {
            // Average measure of <role> events of parent X.
            let name = pick_name(db, rng)?;
            let mut q = Query::simple(
                d.parent,
                vec![ColExpr::agg(AggFunc::Avg, measure_col)],
            );
            q.from = from;
            q.where_ = Some(Condition::single(Predicate {
                lhs: ColExpr::plain(name_col),
                op: CmpOp::Eq,
                rhs: Operand::Lit(Literal::Str(name.clone())),
                rhs2: None,
            }));
            let nl = format!(
                "What is the average {} of the {} {} of the {} whose name is {name}?",
                d.measure, role.word, d.event_plural, d.parent
            );
            (nl, q)
        }
        _ => {
            // Parent of the <role> event with the highest measure.
            let mut q = Query::simple(d.parent, vec![ColExpr::plain(name_col)]);
            q.from = from;
            q.order_by = Some(OrderClause {
                items: vec![OrderItem {
                    expr: ColExpr::plain(measure_col),
                    dir: OrderDir::Desc,
                }],
            });
            q.limit = Some(1);
            let nl = format!(
                "What is the name of the {} with the {} {} with the highest {}?",
                d.parent, role.word, d.event, d.measure
            );
            (nl, q)
        }
    })
}

/// Configuration for the QBEN simulator.
#[derive(Debug, Clone, Copy)]
pub struct QbenSimConfig {
    /// Curated sample queries across the 7 databases (paper: 293).
    pub samples: usize,
    /// Test queries (paper: 200).
    pub test: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for QbenSimConfig {
    fn default() -> Self {
        QbenSimConfig {
            samples: 293,
            test: 200,
            seed: 777,
        }
    }
}

/// Build the `qben_sim` benchmark.
pub fn qben_sim(config: QbenSimConfig) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dbs: Vec<GeneratedDb> = DOMAINS.iter().map(|d| build_domain_db(d, &mut rng)).collect();

    let mut samples = Vec::new();
    let mut test = Vec::new();
    let mut seen = std::collections::HashSet::new();

    // Round-robin over (domain, role, pattern) with varying literals until
    // both splits are full.
    let mut tick = 0usize;
    let budget = (config.samples + config.test) * 12;
    while (samples.len() < config.samples || test.len() < config.test) && tick < budget {
        let d = &DOMAINS[tick % DOMAINS.len()];
        let role = &d.roles[(tick / DOMAINS.len()) % 2];
        let pattern = (tick / (DOMAINS.len() * 2)) % 5;
        tick += 1;
        let db = dbs.iter().find(|g| g.schema.name == d.db).expect("domain db");
        let Some((nl, sql)) = role_query(d, role, pattern, db, &mut rng) else {
            continue;
        };
        let key = format!("{}|{nl}|{}", d.db, gar_sql::to_sql(&sql));
        if !seen.insert(key) {
            continue;
        }
        let ex = Example {
            db: d.db.to_string(),
            nl,
            sql,
        };
        if samples.len() < config.samples && (!tick.is_multiple_of(3) || test.len() >= config.test) {
            samples.push(ex);
        } else if test.len() < config.test {
            test.push(ex);
        }
    }

    Benchmark {
        name: "qben_sim".to_string(),
        dbs,
        train: Vec::new(),
        dev: Vec::new(),
        test,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Benchmark {
        qben_sim(QbenSimConfig {
            samples: 60,
            test: 40,
            seed: 1,
        })
    }

    #[test]
    fn has_seven_databases_with_annotations() {
        let b = small();
        assert_eq!(b.dbs.len(), 7);
        for db in &b.dbs {
            assert_eq!(db.annotations.len(), 2, "{}", db.schema.name);
        }
    }

    #[test]
    fn splits_have_requested_sizes() {
        let b = small();
        assert_eq!(b.samples.len(), 60);
        assert_eq!(b.test.len(), 40);
    }

    #[test]
    fn every_query_resolves_and_executes() {
        let b = small();
        for ex in b.samples.iter().chain(&b.test) {
            let db = b.db(&ex.db).unwrap();
            assert!(gar_schema::resolve_query(&db.schema, &ex.sql).is_ok());
            assert!(
                gar_engine::execute(&db.database, &ex.sql).is_ok(),
                "{}",
                gar_sql::to_sql(&ex.sql)
            );
        }
    }

    #[test]
    fn role_words_appear_in_nl_but_not_in_schema() {
        let b = small();
        for ex in b.test.iter().take(20) {
            let db = b.db(&ex.db).unwrap();
            let nl = ex.nl.to_lowercase();
            // The NL must carry a role adjective that no column name spells
            // out the same way the join condition does.
            let has_role_word = DOMAINS
                .iter()
                .flat_map(|d| d.roles.iter())
                .any(|r| nl.contains(r.word));
            assert!(has_role_word, "{nl}");
            let _ = db;
        }
    }

    #[test]
    fn both_roles_are_exercised() {
        let b = small();
        let mut dest = 0;
        let mut src = 0;
        for ex in b.samples.iter().chain(&b.test) {
            let sql = gar_sql::to_sql(&ex.sql);
            if ex.db == "flight_net" {
                if sql.contains("dest_airport") {
                    dest += 1;
                }
                if sql.contains("source_airport") {
                    src += 1;
                }
            }
        }
        assert!(dest > 0 && src > 0, "dest {dest} src {src}");
    }

    #[test]
    fn test_is_component_similar_to_samples() {
        // Every test query's masked fingerprint pattern (ignoring values)
        // must also occur in the sample split for at least one sibling —
        // QBEN's "test queries for each are component-similar to those in
        // the sample set".
        let b = qben_sim(QbenSimConfig {
            samples: 140,
            test: 60,
            seed: 2,
        });
        let sample_fps: std::collections::HashSet<String> = b
            .samples
            .iter()
            .map(|e| gar_sql::fingerprint(&gar_sql::normalize(&gar_sql::mask_values(&e.sql))))
            .collect();
        let mut covered = 0usize;
        for ex in &b.test {
            let fp =
                gar_sql::fingerprint(&gar_sql::normalize(&gar_sql::mask_values(&ex.sql)));
            if sample_fps.contains(&fp) {
                covered += 1;
            }
        }
        assert!(
            covered * 10 >= b.test.len() * 8,
            "only {covered}/{} component-similar",
            b.test.len()
        );
    }
}
