//! Benchmark container types shared by the four suite simulators.

use crate::schema_gen::GeneratedDb;
use gar_sql::Query;

/// One (NL, SQL) evaluation example over a named database.
#[derive(Debug, Clone)]
pub struct Example {
    /// Database id the example targets.
    pub db: String,
    /// The natural-language question.
    pub nl: String,
    /// The gold SQL query (resolved against the database's schema).
    pub sql: Query,
}

/// A benchmark: databases plus train/dev/test (and, for QBEN, sample)
/// example splits. Splits that a benchmark does not define are empty.
#[derive(Debug, Clone, Default)]
pub struct Benchmark {
    /// Benchmark name (`spider_sim`, `geo_sim`, ...).
    pub name: String,
    /// All databases, train and evaluation.
    pub dbs: Vec<GeneratedDb>,
    /// Training examples (cross-database for spider-style suites).
    pub train: Vec<Example>,
    /// Validation examples.
    pub dev: Vec<Example>,
    /// Test examples.
    pub test: Vec<Example>,
    /// Sample queries (QBEN's curated sample split).
    pub samples: Vec<Example>,
}

impl Benchmark {
    /// Look up a database by id.
    pub fn db(&self, name: &str) -> Option<&GeneratedDb> {
        self.dbs.iter().find(|d| d.schema.name == name)
    }

    /// Database ids covered by a split.
    pub fn split_dbs(split: &[Example]) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for e in split {
            if !out.contains(&e.db) {
                out.push(e.db.clone());
            }
        }
        out
    }

    /// The evaluation split: `dev` when non-empty (SPIDER evaluates on the
    /// validation set), else `test`.
    pub fn eval_split(&self) -> &[Example] {
        if !self.dev.is_empty() {
            &self.dev
        } else {
            &self.test
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_dbs_dedups_in_order() {
        let e = |db: &str| Example {
            db: db.into(),
            nl: String::new(),
            sql: gar_sql::parse("SELECT t.a FROM t").unwrap(),
        };
        let split = vec![e("b"), e("a"), e("b"), e("c")];
        assert_eq!(Benchmark::split_dbs(&split), vec!["b", "a", "c"]);
    }

    #[test]
    fn eval_split_prefers_dev() {
        let e = Example {
            db: "x".into(),
            nl: "q".into(),
            sql: gar_sql::parse("SELECT t.a FROM t").unwrap(),
        };
        let mut b = Benchmark {
            name: "t".into(),
            ..Benchmark::default()
        };
        b.test = vec![e.clone()];
        assert_eq!(b.eval_split().len(), 1);
        b.dev = vec![e.clone(), e];
        assert_eq!(b.eval_split().len(), 2);
    }
}
