//! The GAR system: training, per-database preparation, and two-stage
//! translation (Fig. 2 / Fig. 3 of the paper).

use crate::cache::{PrepareCache, SampleProtocol};
use crate::metrics::{metrics, StageTimings};
use crate::postprocess::{extract_nl_values, filter_candidates, instantiate};
use crate::prepare::{eval_samples_from_gold, prepare, DialectEntry, PoolIndex, PrepareConfig};
use gar_benchmarks::{Example, GeneratedDb};
use gar_ltr::{
    pair_features, pair_features_into, similarity_score, RankList, RerankConfig, RerankModel,
    RetrievalConfig, RetrievalModel, ScoreScratch, Triple,
};
use gar_obs::StageTimer;
use gar_sql::{exact_match, mask_values, Query};
use gar_vecindex::{nan_last_desc, FlatIndex, Hit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Full GAR configuration.
#[derive(Debug, Clone)]
pub struct GarConfig {
    /// Data-preparation settings (generalization size, dialects,
    /// annotations, rules).
    pub prepare: PrepareConfig,
    /// Generalization size used for *training* databases (the training
    /// signal needs variety, not coverage, so this can be smaller).
    pub train_gen_size: usize,
    /// Retrieval threshold k (paper: 100).
    pub k: usize,
    /// Negative samples per training query for the retrieval model.
    pub negatives: usize,
    /// Candidate-list size for re-ranker training (grouped listwise).
    pub rerank_list_size: usize,
    /// Retrieval-model hyper-parameters.
    pub retrieval: RetrievalConfig,
    /// Re-ranker hyper-parameters.
    pub rerank: RerankConfig,
    /// Apply the second-stage re-ranker (Table 8 ablation switch).
    pub use_rerank: bool,
    /// Build int8-quantized prepared indices: the candidate scan runs over
    /// int8 codes (4× less memory traffic) and the top `rescore_factor * k`
    /// survivors are re-scored against the f32 vectors, so reported scores
    /// stay exact.
    pub quantize: bool,
    /// Over-retrieval factor for quantized search: the int8 scan keeps
    /// `rescore_factor * k` candidates before exact f32 rescoring. Values
    /// below 1 behave as 1. Ignored unless `quantize` is set.
    pub rescore_factor: usize,
    /// Statically validate ranked candidates against the workspace schema
    /// (post-rerank gate, [`crate::validate`]): candidates that cannot
    /// execute are dropped. If every candidate is rejected the ungated
    /// ranking is kept (counted via `validate.all_rejected`).
    pub validate: bool,
    /// Execution-guided demotion: run the top `exec_rerank_k` instantiated
    /// candidates through `gar-engine` on a row-sampled copy of the
    /// database and demote candidates that error or return degenerate
    /// results. `0` disables the stage.
    pub exec_rerank_k: usize,
    /// Rows kept per table in the sampled execution database (prefix
    /// sample; generous by default so small benchmark tables execute in
    /// full).
    pub exec_row_budget: usize,
    /// Worker threads for batch encoding.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for GarConfig {
    fn default() -> Self {
        GarConfig {
            prepare: PrepareConfig::default(),
            train_gen_size: 600,
            k: 100,
            negatives: 8,
            rerank_list_size: 30,
            retrieval: RetrievalConfig::default(),
            rerank: RerankConfig::default(),
            use_rerank: true,
            quantize: false,
            rescore_factor: 4,
            validate: false,
            exec_rerank_k: 0,
            exec_row_budget: 512,
            threads: 4,
            seed: 2023,
        }
    }
}

/// A trained GAR instance (the two ranking models plus configuration).
#[derive(Debug, Clone)]
pub struct GarSystem {
    /// Configuration used at training time.
    pub config: GarConfig,
    /// The first-stage Siamese retrieval encoder.
    pub retrieval: RetrievalModel,
    /// The second-stage listwise re-ranker.
    pub rerank: RerankModel,
}

/// A database prepared for translation: candidate entries, their
/// embeddings, and the vector index.
#[derive(Debug, Clone)]
pub struct PreparedDb {
    /// Database id.
    pub db_name: String,
    /// Candidate pool (masked SQL + dialect).
    pub entries: Vec<DialectEntry>,
    /// Candidate embeddings (parallel to `entries`).
    pub embeds: Vec<Vec<f32>>,
    /// Flat cosine index over the embeddings.
    pub index: FlatIndex,
}

/// Read access to a prepared candidate pool, abstracting over the owned
/// [`PreparedDb`] and the zero-copy
/// [`PreparedView`](crate::artifact::PreparedView) so the whole
/// translation path ([`GarSystem::translate`] /
/// [`GarSystem::translate_batch`]) runs unchanged — and bit-identically —
/// over either representation.
pub trait CandidatePool: Sync {
    /// Database id the pool was prepared for.
    fn db_name(&self) -> &str;
    /// Number of pool entries.
    fn pool_len(&self) -> usize;
    /// The masked candidate SQL of entry `i`.
    fn sql(&self, i: usize) -> &Query;
    /// The dialect text of entry `i`.
    fn dialect(&self, i: usize) -> &str;
    /// The raw (unnormalized) embedding of entry `i`.
    fn embed(&self, i: usize) -> &[f32];
    /// `true` when searches scan the int8 sidecar.
    fn is_quantized(&self) -> bool;
    /// Top-k search over the pool: the two-pass int8 scan plus exact
    /// rescore on quantized pools (`rescore_factor` is ignored
    /// otherwise).
    fn search(&self, query: &[f32], k: usize, rescore_factor: usize) -> Vec<Hit>;
    /// Batched [`CandidatePool::search`] with an explicit worker count;
    /// bit-identical results to the per-query path.
    fn search_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        rescore_factor: usize,
        threads: usize,
    ) -> Vec<Vec<Hit>>;
}

impl CandidatePool for PreparedDb {
    fn db_name(&self) -> &str {
        &self.db_name
    }
    fn pool_len(&self) -> usize {
        self.entries.len()
    }
    fn sql(&self, i: usize) -> &Query {
        &self.entries[i].sql
    }
    fn dialect(&self, i: usize) -> &str {
        &self.entries[i].dialect
    }
    fn embed(&self, i: usize) -> &[f32] {
        &self.embeds[i]
    }
    fn is_quantized(&self) -> bool {
        self.index.is_quantized()
    }
    fn search(&self, query: &[f32], k: usize, rescore_factor: usize) -> Vec<Hit> {
        if self.index.is_quantized() {
            self.index.search_quantized(query, k, rescore_factor)
        } else {
            self.index.search(query, k)
        }
    }
    fn search_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        rescore_factor: usize,
        threads: usize,
    ) -> Vec<Vec<Hit>> {
        if self.index.is_quantized() {
            self.index
                .search_batch_quantized_threads(queries, k, rescore_factor, threads)
        } else {
            self.index.search_batch_threads(queries, k, threads)
        }
    }
}

// `&ws.prepared` in generic position infers `P = Arc<PreparedDb>` (deref
// coercion does not apply there), so shared handles implement the trait
// by delegation.
impl<P: CandidatePool + Send + Sync + ?Sized> CandidatePool for Arc<P> {
    fn db_name(&self) -> &str {
        (**self).db_name()
    }
    fn pool_len(&self) -> usize {
        (**self).pool_len()
    }
    fn sql(&self, i: usize) -> &Query {
        (**self).sql(i)
    }
    fn dialect(&self, i: usize) -> &str {
        (**self).dialect(i)
    }
    fn embed(&self, i: usize) -> &[f32] {
        (**self).embed(i)
    }
    fn is_quantized(&self) -> bool {
        (**self).is_quantized()
    }
    fn search(&self, query: &[f32], k: usize, rescore_factor: usize) -> Vec<Hit> {
        (**self).search(query, k, rescore_factor)
    }
    fn search_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        rescore_factor: usize,
        threads: usize,
    ) -> Vec<Vec<Hit>> {
        (**self).search_batch(queries, k, rescore_factor, threads)
    }
}

/// The post-ranking gate switches that may differ per workspace in a
/// multi-tenant deployment: static validation and execution-guided
/// demotion. [`GarSystem::translate`] applies the system-wide values from
/// [`GarConfig`]; `gar-serve` resolves a per-workspace gate and calls
/// [`GarSystem::translate_batch_with_gate`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateConfig {
    /// Static schema validation of ranked candidates
    /// ([`GarConfig::validate`]).
    pub validate: bool,
    /// Execution-guided demotion depth; 0 disables
    /// ([`GarConfig::exec_rerank_k`]).
    pub exec_rerank_k: usize,
    /// Row budget for the sampled execution database
    /// ([`GarConfig::exec_row_budget`]).
    pub exec_row_budget: usize,
}

impl From<&GarConfig> for GateConfig {
    fn from(c: &GarConfig) -> GateConfig {
        GateConfig {
            validate: c.validate,
            exec_rerank_k: c.exec_rerank_k,
            exec_row_budget: c.exec_row_budget,
        }
    }
}

/// One ranked translation candidate.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// Index into the prepared pool.
    pub entry: usize,
    /// The candidate with values instantiated from the NL query.
    pub sql: Query,
    /// Final score (re-ranker, or retrieval when re-ranking is off).
    pub score: f32,
}

/// The result of one translation.
#[derive(Debug, Clone)]
pub struct Translation {
    /// Ranked candidates, best first (top 10 kept).
    pub ranked: Vec<RankedCandidate>,
    /// Entry indices returned by the first-stage retrieval (top-k).
    pub retrieved: Vec<usize>,
    /// Per-stage latencies; identical shape for the single and batched
    /// paths (the batch reports amortized per-query encode/retrieve).
    pub timings: StageTimings,
}

impl Translation {
    /// The top-1 SQL, if any candidate survived.
    pub fn top1(&self) -> Option<&Query> {
        self.ranked.first().map(|c| &c.sql)
    }
}

/// A training report.
#[derive(Debug, Clone, Default)]
pub struct GarTrainReport {
    /// Number of (q, d, s) retrieval triples.
    pub retrieval_triples: usize,
    /// Retrieval per-epoch losses.
    pub retrieval_losses: Vec<f32>,
    /// Number of listwise groups.
    pub rerank_lists: usize,
    /// Re-ranker per-epoch losses.
    pub rerank_losses: Vec<f32>,
}

impl GarSystem {
    /// Train GAR on a benchmark's training split (Fig. 3): run data
    /// preparation per training database, build the similarity-scored
    /// triples for the retrieval model, then the query-grouped lists for
    /// the re-ranker.
    pub fn train(dbs: &[GeneratedDb], train: &[Example], config: GarConfig) -> (Self, GarTrainReport) {
        let mut report = GarTrainReport::default();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Group training examples per database.
        let mut by_db: BTreeMap<&str, Vec<&Example>> = BTreeMap::new();
        for ex in train {
            by_db.entry(ex.db.as_str()).or_default().push(ex);
        }

        // Data preparation per training database: the gold queries are the
        // sample set (Section II-B). Databases are independent, so they
        // prepare concurrently on a bounded pool; leftover threads go to
        // each job's render stage. The fan-out preserves per-db output
        // exactly, and the training RNG is untouched by prepare, so the
        // triples below are bit-identical to the sequential path.
        let jobs: Vec<(&str, &GeneratedDb, Vec<Query>)> = by_db
            .iter()
            .filter_map(|(db_name, exs)| {
                let db = dbs.iter().find(|d| d.schema.name == *db_name)?;
                let samples: Vec<Query> = exs.iter().map(|e| e.sql.clone()).collect();
                Some((*db_name, db, samples))
            })
            .collect();
        let (outer, inner) = crate::par::thread_split(config.threads, jobs.len());
        let prep_cfg = PrepareConfig {
            gen_size: config.train_gen_size,
            threads: inner,
            ..config.prepare.clone()
        };
        let prepared: BTreeMap<&str, (Vec<DialectEntry>, PoolIndex)> =
            crate::par::par_map(jobs, outer, |(db_name, db, samples)| {
                let entries = prepare(db, &samples, &prep_cfg);
                let pool = PoolIndex::build(&entries);
                (db_name, (entries, pool))
            })
            .into_iter()
            .collect();

        // Retrieval triples.
        let mut triples = Vec::new();
        for (db_name, exs) in &by_db {
            let Some((entries, pool)) = prepared.get(db_name) else {
                continue;
            };
            for ex in exs {
                let gold = mask_values(&ex.sql);
                // Positive: the dialect generated from the gold query.
                if let Some(e) = pool.first_match(entries, &gold).map(|i| &entries[i]) {
                    triples.push(Triple {
                        query: ex.nl.clone(),
                        dialect: e.dialect.clone(),
                        score: 1.0,
                    });
                }
                // Negatives: random pool entries with clause-punishment
                // scores (Section III-C1).
                for _ in 0..config.negatives {
                    let e = &entries[rng.random_range(0..entries.len())];
                    let score = similarity_score(&e.sql, &gold);
                    if score >= 1.0 {
                        continue;
                    }
                    triples.push(Triple {
                        query: ex.nl.clone(),
                        dialect: e.dialect.clone(),
                        score,
                    });
                }
            }
        }
        report.retrieval_triples = triples.len();
        let mut retrieval = RetrievalModel::new(config.retrieval.clone());
        report.retrieval_losses = retrieval.train_t(&triples, config.threads).epoch_losses;

        // Re-ranker lists: retrieve top candidates per training query with
        // the *trained* retrieval model (Section III-C2).
        let mut lists = Vec::new();
        for (db_name, exs) in &by_db {
            let Some((entries, pool)) = prepared.get(db_name) else {
                continue;
            };
            let texts: Vec<&str> = entries.iter().map(|e| e.dialect.as_str()).collect();
            let embeds = retrieval.encode_batch(&texts, config.threads);
            let mut index = FlatIndex::new(retrieval.embed_dim());
            let ids: Vec<usize> = (0..embeds.len()).collect();
            index.add_batch(&ids, &embeds, config.threads);
            for ex in exs {
                let gold = mask_values(&ex.sql);
                let q_emb = retrieval.encode(&ex.nl);
                let hits = index.search(&q_emb, config.rerank_list_size);
                let mut ids: Vec<usize> = hits.iter().map(|h| h.id).collect();
                // Guarantee the positive is present in the list.
                let gold_id = pool.first_match(entries, &gold);
                if let Some(g) = gold_id {
                    if !ids.contains(&g) {
                        if !ids.is_empty() {
                            let last = ids.len() - 1;
                            ids[last] = g;
                        } else {
                            ids.push(g);
                        }
                    }
                } else {
                    continue;
                }
                let mut list = RankList::default();
                for id in ids {
                    list.items.push(pair_features(
                        &q_emb,
                        &embeds[id],
                        &ex.nl,
                        &entries[id].dialect,
                    ));
                    list.labels.push(exact_match(&entries[id].sql, &gold));
                }
                lists.push(list);
            }
        }
        report.rerank_lists = lists.len();
        let mut rerank = RerankModel::new(RerankConfig {
            embed: config.retrieval.embed,
            ..config.rerank.clone()
        });
        report.rerank_losses = rerank.train_t(&lists, config.threads).epoch_losses;

        (
            GarSystem {
                config,
                retrieval,
                rerank,
            },
            report,
        )
    }

    /// Prepare an evaluation database under the paper's protocol
    /// (Section V-A3): generalize the gold set, rule the gold queries out,
    /// use the remainder as samples, then run normal data preparation.
    pub fn prepare_eval_db(&self, db: &GeneratedDb, gold: &[Query]) -> PreparedDb {
        self.prepare_eval_db_t(db, gold, self.config.threads)
    }

    /// [`GarSystem::prepare_eval_db`] with an explicit thread budget for
    /// the prepare stages (output is bit-identical for any value).
    pub fn prepare_eval_db_t(&self, db: &GeneratedDb, gold: &[Query], threads: usize) -> PreparedDb {
        let samples = eval_samples_from_gold(db, gold, &self.config.prepare);
        self.prepare_with_samples_t(db, &samples, threads)
    }

    /// [`GarSystem::prepare_eval_db`] through a content-addressed
    /// [`PrepareCache`]: on a hit the whole offline phase (generalize →
    /// render → encode → index) is skipped and the pool is decoded from the
    /// artifact — bit-identical entries, embeddings, and index. `None`
    /// degrades to the uncached path. The key covers the gold set *before*
    /// sample derivation, so the derivation itself is also skipped on hits.
    pub fn prepare_eval_db_cached(
        &self,
        db: &GeneratedDb,
        gold: &[Query],
        threads: usize,
        cache: Option<&PrepareCache>,
    ) -> PreparedDb {
        let Some(cache) = cache else {
            return self.prepare_eval_db_t(db, gold, threads);
        };
        let key = PrepareCache::key(self, db, gold, SampleProtocol::EvalGold);
        if let Some(p) = cache.load(key, &db.schema.name) {
            return p;
        }
        let p = self.prepare_eval_db_t(db, gold, threads);
        cache.store(key, &p);
        p
    }

    /// Prepare a database from an explicit sample-query set (the deployment
    /// path, and QBEN's curated sample split).
    pub fn prepare_with_samples(&self, db: &GeneratedDb, samples: &[Query]) -> PreparedDb {
        self.prepare_with_samples_t(db, samples, self.config.threads)
    }

    /// [`GarSystem::prepare_with_samples`] with an explicit thread budget.
    /// The stages run in order — generalize (sequential), render, encode,
    /// index — with render/encode/index fanned out over `threads` scoped
    /// workers and timed into the `prep.*_us` histograms; the prepared pool
    /// is bit-identical for every thread count.
    pub fn prepare_with_samples_t(
        &self,
        db: &GeneratedDb,
        samples: &[Query],
        threads: usize,
    ) -> PreparedDb {
        let m = metrics();
        let entries = prepare(db, samples, &PrepareConfig {
            threads,
            ..self.config.prepare.clone()
        });
        let texts: Vec<&str> = entries.iter().map(|e| e.dialect.as_str()).collect();
        let encode_timer = StageTimer::start(&m.prep_encode);
        let embeds = self.retrieval.encode_batch(&texts, threads);
        encode_timer.stop();
        let index_timer = StageTimer::start(&m.prep_index);
        let mut index = if self.config.quantize {
            FlatIndex::quantized(self.retrieval.embed_dim())
        } else {
            FlatIndex::new(self.retrieval.embed_dim())
        };
        let ids: Vec<usize> = (0..embeds.len()).collect();
        index.add_batch(&ids, &embeds, threads);
        index_timer.stop();
        PreparedDb {
            db_name: db.schema.name.clone(),
            entries,
            embeds,
            index,
        }
    }

    /// [`GarSystem::prepare_with_samples`] through a content-addressed
    /// [`PrepareCache`]; `None` degrades to the uncached path.
    ///
    /// Lookup order: exact hit (bit-identical decode of a cold prepare) →
    /// delta patch (a cached pool with the same base identity and an
    /// overlapping sample set is retired/extended in place, encoding only
    /// the new entries) → cold prepare. Delta-patched pools are *not*
    /// stored under the exact key, so exact hits stay bit-identical.
    pub fn prepare_with_samples_cached(
        &self,
        db: &GeneratedDb,
        samples: &[Query],
        threads: usize,
        cache: Option<&PrepareCache>,
    ) -> PreparedDb {
        let Some(cache) = cache else {
            return self.prepare_with_samples_t(db, samples, threads);
        };
        let key = PrepareCache::key(self, db, samples, SampleProtocol::Explicit);
        if let Some(p) = cache.load(key, &db.schema.name) {
            return p;
        }
        if let Some(p) = self.prepare_delta_from_cache(db, samples, threads, cache) {
            return p;
        }
        let p = self.prepare_with_samples_t(db, samples, threads);
        if cache.store(key, &p) {
            let base = PrepareCache::base_key(self, db, SampleProtocol::Explicit);
            cache.store_meta(key, base, &PrepareCache::sample_fingerprints(samples));
        }
        p
    }

    /// The delta leg of [`GarSystem::prepare_with_samples_cached`]: find a
    /// cached pool with the same base identity whose sample set is close to
    /// `samples`, then patch it — tombstone the entries of retired samples
    /// and append entries generalized from the added ones. Only the Δ
    /// entries are encoded. The patched pool is a valid candidate pool for
    /// `samples` but is not byte-identical to a cold prepare (the
    /// generalizer walks the full sample set), so it is never stored under
    /// the exact key. Counts `prep.cache_delta` on success.
    fn prepare_delta_from_cache(
        &self,
        db: &GeneratedDb,
        samples: &[Query],
        threads: usize,
        cache: &PrepareCache,
    ) -> Option<PreparedDb> {
        use std::collections::HashSet;
        let base = PrepareCache::base_key(self, db, SampleProtocol::Explicit);
        let fps = PrepareCache::sample_fingerprints(samples);
        let (base_key, base_fps) = cache.find_delta_base(base, &fps)?;
        let mut p = cache.load(base_key, &db.schema.name)?;
        let base_set: HashSet<u64> = base_fps.iter().copied().collect();
        let cur_set: HashSet<u64> = fps.iter().copied().collect();
        let removed: Vec<u64> = base_fps
            .iter()
            .filter(|fp| !cur_set.contains(fp))
            .copied()
            .collect();
        if !removed.is_empty() {
            let pool = PoolIndex::build(&p.entries);
            let mut ids: Vec<usize> = removed
                .iter()
                .flat_map(|&h| pool.ids_for_hash(h))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            p.index.remove_batch(&ids);
        }
        let added: Vec<Query> = samples
            .iter()
            .zip(&fps)
            .filter(|(_, fp)| !base_set.contains(fp))
            .map(|(q, _)| q.clone())
            .collect();
        if !added.is_empty() {
            self.extend_prepared(db, &mut p, &added, threads);
        }
        metrics().cache_delta.inc();
        Some(p)
    }

    /// Incrementally extend a prepared database with new sample queries:
    /// generalize and render only the new samples, drop everything the pool
    /// already contains (fingerprint dedup), then encode and index the
    /// genuinely new entries. Existing entries, embeddings, and entry ids
    /// are untouched — the pool only grows, and the encode cost is O(new
    /// entries), never a full re-encode. Returns the number of entries
    /// appended.
    pub fn extend_prepared(
        &self,
        db: &GeneratedDb,
        prepared: &mut PreparedDb,
        new_samples: &[Query],
        threads: usize,
    ) -> usize {
        let m = metrics();
        let fresh = prepare(db, new_samples, &PrepareConfig {
            threads,
            ..self.config.prepare.clone()
        });
        let pool = PoolIndex::build(&prepared.entries);
        let new_entries: Vec<DialectEntry> = fresh
            .into_iter()
            .filter(|e| pool.first_match(&prepared.entries, &e.sql).is_none())
            .collect();
        if new_entries.is_empty() {
            return 0;
        }
        let texts: Vec<&str> = new_entries.iter().map(|e| e.dialect.as_str()).collect();
        let encode_timer = StageTimer::start(&m.prep_encode);
        let embeds = self.retrieval.encode_batch(&texts, threads);
        encode_timer.stop();
        let index_timer = StageTimer::start(&m.prep_index);
        let first = prepared.entries.len();
        let ids: Vec<usize> = (first..first + embeds.len()).collect();
        prepared.index.add_batch(&ids, &embeds, threads);
        index_timer.stop();
        prepared.entries.extend(new_entries);
        prepared.embeds.extend(embeds);
        prepared.entries.len() - first
    }

    /// Retire sample queries from a prepared database: every pool entry
    /// whose masked SQL matches a retired sample is tombstoned in the
    /// index, so no search path returns it again. Entries and embeddings
    /// are kept in place (entry ids are positions into them and stay
    /// valid); the index reclaims the dead rows automatically once
    /// tombstones cross its compaction threshold. Returns the number of
    /// entries retired.
    pub fn retire_samples(&self, prepared: &mut PreparedDb, retired: &[Query]) -> usize {
        let pool = PoolIndex::build(&prepared.entries);
        let mut ids: Vec<usize> = retired
            .iter()
            .flat_map(|q| pool.gold_ids(&prepared.entries, &mask_values(q)))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        prepared.index.remove_batch(&ids)
    }

    /// Translate an NL question over a prepared database (owned pool or
    /// zero-copy view), gated by the system-wide [`GarConfig`] switches.
    pub fn translate<P: CandidatePool + ?Sized>(
        &self,
        db: &GeneratedDb,
        prepared: &P,
        nl: &str,
    ) -> Translation {
        self.translate_with_gate(db, prepared, nl, &GateConfig::from(&self.config))
    }

    /// [`GarSystem::translate`] with an explicit per-request gate — the
    /// single-question entry point for multi-tenant serving, where each
    /// workspace carries its own validation/execution switches.
    pub fn translate_with_gate<P: CandidatePool + ?Sized>(
        &self,
        db: &GeneratedDb,
        prepared: &P,
        nl: &str,
        gate: &GateConfig,
    ) -> Translation {
        // Stage 1: encode, then retrieve top-k.
        let t0 = Instant::now();
        let q_emb = self.retrieval.encode(nl);
        let encode_us = t0.elapsed().as_micros() as u64;
        let t1 = Instant::now();
        let hits = prepared.search(&q_emb, self.config.k, self.config.rescore_factor);
        let retrieve_us = t1.elapsed().as_micros() as u64;
        self.finish_translation(db, prepared, nl, &q_emb, hits, encode_us, retrieve_us, gate)
    }

    /// Translate a batch of NL questions over one prepared database,
    /// amortizing the first stage: one [`RetrievalModel::encode_batch`]
    /// over all questions, one [`FlatIndex::search_batch_threads`] over all
    /// query embeddings, then the filter + re-rank stages fan out over the
    /// same worker pool. Results are identical to calling
    /// [`GarSystem::translate`] per question; `timings.encode_us` and
    /// `timings.retrieve_us` report the batch-amortized per-query stage-1
    /// latencies.
    pub fn translate_batch<S: AsRef<str> + Sync, P: CandidatePool + ?Sized>(
        &self,
        db: &GeneratedDb,
        prepared: &P,
        nls: &[S],
    ) -> Vec<Translation> {
        self.translate_batch_with_gate(db, prepared, nls, &GateConfig::from(&self.config))
    }

    /// [`GarSystem::translate_batch`] with an explicit per-request gate —
    /// the batched entry point for multi-tenant serving, where each
    /// workspace carries its own validation/execution switches.
    pub fn translate_batch_with_gate<S: AsRef<str> + Sync, P: CandidatePool + ?Sized>(
        &self,
        db: &GeneratedDb,
        prepared: &P,
        nls: &[S],
        gate: &GateConfig,
    ) -> Vec<Translation> {
        if nls.is_empty() {
            return Vec::new();
        }
        let threads = self.config.threads.clamp(1, nls.len());

        // Stage 1, batched across all questions.
        let t0 = Instant::now();
        let q_embs = self.retrieval.encode_batch(nls, threads);
        let encode_us = (t0.elapsed().as_micros() / nls.len() as u128) as u64;
        let t1 = Instant::now();
        let mut all_hits =
            prepared.search_batch(&q_embs, self.config.k, self.config.rescore_factor, threads);
        let retrieve_us = (t1.elapsed().as_micros() / nls.len() as u128) as u64;

        // Stages 2 + 3, chunk-balanced over scoped workers.
        let mut out: Vec<Option<Translation>> = (0..nls.len()).map(|_| None).collect();
        if threads == 1 {
            for (i, slot) in out.iter_mut().enumerate() {
                let hits = std::mem::take(&mut all_hits[i]);
                *slot = Some(self.finish_translation(
                    db,
                    prepared,
                    nls[i].as_ref(),
                    &q_embs[i],
                    hits,
                    encode_us,
                    retrieve_us,
                    gate,
                ));
            }
        } else {
            let base = nls.len() / threads;
            let extra = nls.len() % threads;
            std::thread::scope(|scope| {
                let mut rest_out = &mut out[..];
                let mut rest_hits = &mut all_hits[..];
                let mut start = 0usize;
                for w in 0..threads {
                    let size = base + usize::from(w < extra);
                    let (slot, tail_out) = rest_out.split_at_mut(size);
                    let (hits, tail_hits) = rest_hits.split_at_mut(size);
                    rest_out = tail_out;
                    rest_hits = tail_hits;
                    let (nls, q_embs) = (&nls[start..start + size], &q_embs[start..start + size]);
                    start += size;
                    scope.spawn(move || {
                        for (i, slot) in slot.iter_mut().enumerate() {
                            let h = std::mem::take(&mut hits[i]);
                            *slot = Some(self.finish_translation(
                                db,
                                prepared,
                                nls[i].as_ref(),
                                &q_embs[i],
                                h,
                                encode_us,
                                retrieve_us,
                                gate,
                            ));
                        }
                    });
                }
            });
        }
        out.into_iter()
            .map(|t| t.expect("translate_batch worker skipped a slot"))
            .collect()
    }

    /// Stages 2 + 3 of translation (value filter, re-rank, instantiate),
    /// shared by the single-question and batched paths so both produce
    /// identical rankings and identical metrics. The caller passes its
    /// already-measured stage-1 latencies; this method records every stage
    /// into the global registry and returns them as [`StageTimings`].
    #[allow(clippy::too_many_arguments)]
    fn finish_translation<P: CandidatePool + ?Sized>(
        &self,
        db: &GeneratedDb,
        prepared: &P,
        nl: &str,
        q_emb: &[f32],
        hits: Vec<gar_vecindex::Hit>,
        encode_us: u64,
        retrieve_us: u64,
        gate: &GateConfig,
    ) -> Translation {
        let m = metrics();
        m.encode.record(encode_us);
        m.retrieve.record(retrieve_us);

        let retrieved: Vec<usize> = hits.iter().map(|h| h.id).collect();
        m.retrieved.add(retrieved.len() as u64);

        // Stage 2: value post-processing filter.
        let filter_timer = StageTimer::start(&m.filter);
        let nl_values = extract_nl_values(nl, db);
        let sqls: Vec<&Query> = retrieved.iter().map(|&i| prepared.sql(i)).collect();
        let filtered = filter_candidates(&retrieved, &sqls, &nl_values);
        let filter_us = filter_timer.stop();
        m.filtered.add((retrieved.len() - filtered.len()) as u64);

        // Stage 3: re-rank (or keep retrieval order).
        let rerank_timer = StageTimer::start(&m.rerank);
        let scored: Vec<(usize, f32)> = if self.config.use_rerank {
            // Flat scratch-backed scoring: one reused feature buffer + one
            // forward scratch across all candidates of the list.
            let mut scratch = ScoreScratch::default();
            let mut feat: Vec<f32> = Vec::new();
            filtered
                .iter()
                .map(|&id| {
                    pair_features_into(
                        q_emb,
                        prepared.embed(id),
                        nl,
                        prepared.dialect(id),
                        &mut feat,
                    );
                    (id, self.rerank.score_with(&feat, &mut scratch))
                })
                .collect()
        } else {
            // Retrieval scores, preserved from the hits.
            m.rerank_disabled.inc();
            filtered
                .iter()
                .map(|&id| {
                    let s = hits
                        .iter()
                        .find(|h| h.id == id)
                        .map(|h| h.score)
                        .unwrap_or(0.0);
                    (id, s)
                })
                .collect()
        };
        let rerank_us = rerank_timer.stop();

        // Instantiate values; candidates whose placeholders stayed
        // unfilled demand values the question never mentioned, so they are
        // demoted below fully-instantiated candidates (the re-ranker score
        // orders within each tier).
        let instantiate_timer = StageTimer::start(&m.instantiate);
        let mut demoted = 0u64;
        let mut with_unfilled: Vec<(usize, RankedCandidate)> = scored
            .into_iter()
            .map(|(id, score)| {
                let sql = instantiate(prepared.sql(id), db, &nl_values);
                let unfilled = gar_sql::masked_count(&sql);
                demoted += u64::from(unfilled > 0);
                (unfilled, RankedCandidate { entry: id, sql, score })
            })
            .collect();
        with_unfilled
            .sort_by(|(ua, a), (ub, b)| ua.cmp(ub).then_with(|| nan_last_desc(a.score, b.score)));
        let mut ranked: Vec<RankedCandidate> =
            with_unfilled.into_iter().map(|(_, c)| c).collect();
        let instantiate_us = instantiate_timer.stop();
        m.demoted_unfilled.add(demoted);

        // Post-rerank candidate gate (crate::validate): a pure function of
        // (schema, database, config, candidates), so the single and batched
        // paths stay bit-identical.
        let mut validate_us = 0u64;
        if gate.validate && !ranked.is_empty() {
            let validate_timer = StageTimer::start(&m.validate);
            let keep: Vec<bool> = ranked
                .iter()
                .map(|c| crate::validate::validate_static(&db.schema, &c.sql).is_ok())
                .collect();
            let rejected = keep.iter().filter(|k| !**k).count();
            if rejected == ranked.len() {
                // Everything rejected: fall back to the ungated ranking
                // rather than answering with nothing.
                m.validate_all_rejected.inc();
            } else if rejected > 0 {
                let mut it = keep.into_iter();
                ranked.retain(|_| it.next().unwrap());
            }
            m.validate_rejected.add(rejected as u64);
            validate_us = validate_timer.stop();
        }
        ranked.truncate(10);

        let mut exec_rerank_us = 0u64;
        if gate.exec_rerank_k > 0 && !ranked.is_empty() {
            let exec_timer = StageTimer::start(&m.exec_rerank);
            let sampled =
                crate::validate::sample_database(&db.database, gate.exec_row_budget.max(1));
            let sqls: Vec<&Query> = ranked.iter().map(|c| &c.sql).collect();
            let tiers = crate::validate::exec_tiers(
                &sampled,
                &sqls,
                gate.exec_rerank_k,
                crate::validate::EXEC_STEP_BUDGET,
            );
            let exec_demoted = tiers.iter().filter(|t| **t > 0).count();
            if exec_demoted > 0 {
                let mut keyed: Vec<(u8, RankedCandidate)> =
                    tiers.into_iter().zip(ranked.drain(..)).collect();
                // Stable: within a tier the existing order is preserved.
                keyed.sort_by_key(|(t, _)| *t);
                ranked = keyed.into_iter().map(|(_, c)| c).collect();
            }
            m.exec_demoted.add(exec_demoted as u64);
            exec_rerank_us = exec_timer.stop();
        }

        m.total.inc();
        if ranked.is_empty() {
            m.empty_result.inc();
        }

        Translation {
            ranked,
            retrieved,
            timings: StageTimings {
                encode_us,
                retrieve_us,
                filter_us,
                rerank_us,
                instantiate_us,
                validate_us,
                exec_rerank_us,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_benchmarks::{spider_sim, SpiderSimConfig};
    use gar_ltr::FeatureConfig;

    /// A small but end-to-end configuration used across core tests.
    pub fn tiny_config() -> GarConfig {
        GarConfig {
            prepare: PrepareConfig {
                gen_size: 400,
                ..PrepareConfig::default()
            },
            train_gen_size: 250,
            k: 40,
            negatives: 6,
            rerank_list_size: 15,
            retrieval: RetrievalConfig {
                features: FeatureConfig {
                    dim: 1024,
                    ..FeatureConfig::default()
                },
                hidden: 48,
                embed: 24,
                epochs: 3,
                ..RetrievalConfig::default()
            },
            rerank: RerankConfig {
                embed: 24,
                hidden: 32,
                epochs: 4,
                ..RerankConfig::default()
            },
            use_rerank: true,
            quantize: false,
            rescore_factor: 4,
            validate: false,
            exec_rerank_k: 0,
            exec_row_budget: 512,
            threads: 4,
            seed: 5,
        }
    }

    #[test]
    fn end_to_end_trains_and_translates_above_chance() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 3,
            val_dbs: 1,
            queries_per_db: 30,
            seed: 21,
        });
        let (gar, report) = GarSystem::train(&bench.dbs, &bench.train, tiny_config());
        assert!(report.retrieval_triples > 50);
        assert!(report.rerank_lists > 20);

        // Evaluate on the held-out database.
        let dev_db_name = &bench.dev[0].db;
        let db = bench.db(dev_db_name).unwrap();
        let gold: Vec<Query> = bench
            .dev
            .iter()
            .filter(|e| &e.db == dev_db_name)
            .map(|e| e.sql.clone())
            .collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        assert!(prepared.entries.len() > gold.len());

        let mut correct = 0usize;
        let mut total = 0usize;
        for ex in bench.dev.iter().filter(|e| &e.db == dev_db_name).take(25) {
            total += 1;
            let tr = gar.translate(db, &prepared, &ex.nl);
            if let Some(top) = tr.top1() {
                if exact_match(top, &ex.sql) {
                    correct += 1;
                }
            }
        }
        // Well above the ~1/N chance level; the full-scale experiment
        // measures the real accuracy.
        assert!(
            correct * 4 >= total,
            "only {correct}/{total} correct on held-out db"
        );
    }

    #[test]
    fn translation_reports_timing_and_candidates() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 22,
        });
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, tiny_config());
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        let tr = gar.translate(db, &prepared, &bench.dev[0].nl);
        assert!(!tr.ranked.is_empty());
        assert!(tr.ranked.len() <= 10);
        assert!(!tr.retrieved.is_empty());
        // Scores are sorted descending.
        for w in tr.ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // The typed stage report sums to the end-to-end latency.
        let t = tr.timings;
        assert_eq!(
            t.total_us(),
            t.encode_us
                + t.retrieve_us
                + t.filter_us
                + t.rerank_us
                + t.instantiate_us
                + t.validate_us
                + t.exec_rerank_us
        );
        // The gate is off in tiny_config, so its stages cost nothing.
        assert_eq!(t.validate_us, 0);
        assert_eq!(t.exec_rerank_us, 0);
    }

    #[test]
    fn stage_histograms_and_counters_populate_after_translate() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 26,
        });
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, tiny_config());
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);

        // The registry is global and tests run in one process, so assert
        // monotone growth rather than absolute values (never reset here).
        let before = gar_obs::global().snapshot();
        let translated = gar.translate(db, &prepared, &bench.dev[0].nl);
        let after = gar_obs::global().snapshot();

        for stage in [
            "stage.encode_us",
            "stage.retrieve_us",
            "stage.filter_us",
            "stage.rerank_us",
            "stage.instantiate_us",
        ] {
            let was = before.histogram(stage).map(|h| h.count).unwrap_or(0);
            let now = after.histogram(stage).expect(stage).count;
            assert!(now >= was + 1, "{stage}: {was} -> {now}");
        }
        let was = before.counter("translate.total").unwrap_or(0);
        assert!(after.counter("translate.total").unwrap() >= was + 1);
        let was = before.counter("candidates.retrieved").unwrap_or(0);
        assert!(
            after.counter("candidates.retrieved").unwrap()
                >= was + translated.retrieved.len() as u64
        );
        assert!(after.histogram("prepare.pool_size").unwrap().count >= 1);
        // Training pushed per-epoch loss series through gar-ltr.
        let losses = after
            .series
            .iter()
            .find(|(n, _)| n == "train.retrieval.epoch_loss")
            .map(|(_, v)| v.len())
            .unwrap_or(0);
        assert!(losses >= 1, "retrieval loss series empty");
        // The JSON snapshot carries every stage histogram for METRICS_*.json.
        let json = after.to_json();
        for stage in ["stage.encode_us", "stage.retrieve_us", "stage.filter_us"] {
            assert!(json.contains(stage), "snapshot JSON misses {stage}");
        }
    }

    #[test]
    fn empty_pool_and_k_zero_translate_to_empty_not_panic() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 27,
        });
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, tiny_config());
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();

        // Empty generalization pool: no entries, no index content.
        let empty = PreparedDb {
            db_name: db.schema.name.clone(),
            entries: Vec::new(),
            embeds: Vec::new(),
            index: FlatIndex::new(gar.retrieval.embed_dim()),
        };
        let before = gar_obs::global()
            .snapshot()
            .counter("translate.empty_result")
            .unwrap_or(0);
        let tr = gar.translate(db, &empty, &bench.dev[0].nl);
        assert!(tr.ranked.is_empty());
        assert!(tr.retrieved.is_empty());
        assert!(tr.top1().is_none());
        let after = gar_obs::global()
            .snapshot()
            .counter("translate.empty_result")
            .unwrap();
        assert!(after >= before + 1, "empty_result not bumped: {before} -> {after}");

        // Batch over the empty pool, and the analyze loop, stay panic-free.
        let nls: Vec<String> = bench.dev.iter().map(|e| e.nl.clone()).take(3).collect();
        for b in gar.translate_batch(db, &empty, &nls) {
            assert!(b.ranked.is_empty());
        }
        let examples: Vec<&Example> = bench.dev.iter().filter(|e| &e.db == db_name).collect();
        let report = crate::analyze(&gar, db, &empty, &examples);
        assert_eq!(report.total, examples.len());
        assert_eq!(report.data_prep_miss, examples.len());

        // k = 0: retrieval returns nothing, translation degrades the same way.
        let mut k0 = gar.clone();
        k0.config.k = 0;
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = k0.prepare_eval_db(db, &gold);
        let tr = k0.translate(db, &prepared, &bench.dev[0].nl);
        assert!(tr.ranked.is_empty());
        assert!(tr.retrieved.is_empty());
        let report = crate::analyze(&k0, db, &prepared, &examples);
        assert_eq!(report.correct, 0);
        assert_eq!(report.total, examples.len());
    }

    #[test]
    fn translate_batch_degenerate_shapes_match_sequential() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 28,
        });
        let mut cfg = tiny_config();
        cfg.threads = 4;
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, cfg);
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        let pool: Vec<String> = bench
            .dev
            .iter()
            .filter(|e| &e.db == db_name)
            .map(|e| e.nl.clone())
            .collect();

        // Batch sizes 0, 1, and threads + 1: no zero-size chunk may panic
        // and every slot must be filled identically to the sequential path.
        for n in [0usize, 1, 5] {
            let nls: Vec<String> = pool.iter().take(n).cloned().collect();
            let batch = gar.translate_batch(db, &prepared, &nls);
            assert_eq!(batch.len(), nls.len());
            for (nl, b) in nls.iter().zip(&batch) {
                let s = gar.translate(db, &prepared, nl);
                assert_eq!(b.retrieved, s.retrieved);
                for (bc, sc) in b.ranked.iter().zip(&s.ranked) {
                    assert_eq!(bc.entry, sc.entry);
                    assert_eq!(bc.score.to_bits(), sc.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn translate_batch_empty_slice_short_circuits_before_any_machinery() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 29,
        });
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, tiny_config());
        let db = bench.db(&bench.dev[0].db).unwrap();
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);

        // The serving batcher never emits empty micro-batches, but the
        // engine boundary still guards the shape: an empty slice returns
        // an empty vec WITHOUT spinning up workers or touching a single
        // translate metric — translate.total and the stage histograms
        // must be byte-for-byte unmoved.
        let before = gar_obs::global().snapshot();
        let out = gar.translate_batch::<String, _>(db, &prepared, &[]);
        assert!(out.is_empty());
        let after = gar_obs::global().snapshot();
        assert_eq!(
            before.counter("translate.total"),
            after.counter("translate.total"),
            "empty batch bumped translate.total"
        );
        for stage in ["stage.encode_us", "stage.retrieve_us", "stage.rerank_us"] {
            assert_eq!(
                before.histogram(stage).map(|h| h.count),
                after.histogram(stage).map(|h| h.count),
                "empty batch recorded into {stage}"
            );
        }
    }

    #[test]
    fn translate_batch_matches_sequential_translate() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 24,
        });
        let mut cfg = tiny_config();
        cfg.threads = 3;
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, cfg);
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);

        let nls: Vec<String> = bench
            .dev
            .iter()
            .filter(|e| &e.db == db_name)
            .map(|e| e.nl.clone())
            .take(11)
            .collect();
        assert!(nls.len() > 4, "need a multi-chunk batch");
        let batch = gar.translate_batch(db, &prepared, &nls);
        assert_eq!(batch.len(), nls.len());
        for (nl, b) in nls.iter().zip(&batch) {
            let s = gar.translate(db, &prepared, nl);
            assert_eq!(b.retrieved, s.retrieved, "retrieval diverged for {nl:?}");
            assert_eq!(b.ranked.len(), s.ranked.len());
            for (bc, sc) in b.ranked.iter().zip(&s.ranked) {
                assert_eq!(bc.entry, sc.entry);
                assert_eq!(bc.score.to_bits(), sc.score.to_bits());
                assert!(exact_match(&bc.sql, &sc.sql));
            }
        }

        assert!(gar.translate_batch::<String, _>(db, &prepared, &[]).is_empty());
    }

    #[test]
    fn prepare_is_bit_identical_across_thread_counts() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 31,
        });
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, tiny_config());
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench
            .dev
            .iter()
            .filter(|e| &e.db == db_name)
            .map(|e| e.sql.clone())
            .collect();
        let seq = gar.prepare_eval_db_t(db, &gold, 1);
        let probe = gar.retrieval.encode(&bench.dev[0].nl);
        for threads in [2usize, 5, 16] {
            let par = gar.prepare_eval_db_t(db, &gold, threads);
            assert_eq!(par.entries.len(), seq.entries.len(), "threads={threads}");
            for (a, b) in seq.entries.iter().zip(&par.entries) {
                assert_eq!(gar_sql::to_sql(&a.sql), gar_sql::to_sql(&b.sql));
                assert_eq!(a.dialect, b.dialect);
            }
            for (a, b) in seq.embeds.iter().zip(&par.embeds) {
                let eq = a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(eq, "embeds diverged at threads={threads}");
            }
            let (hs, hp) = (seq.index.search(&probe, 10), par.index.search(&probe, 10));
            assert_eq!(hs.len(), hp.len());
            for (s, p) in hs.iter().zip(&hp) {
                assert_eq!(s.id, p.id);
                assert_eq!(s.score.to_bits(), p.score.to_bits());
            }
        }
    }

    #[test]
    fn train_is_deterministic_across_thread_counts() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 12,
            seed: 33,
        });
        let mut c1 = tiny_config();
        c1.threads = 1;
        let mut c8 = tiny_config();
        c8.threads = 8;
        let (g1, r1) = GarSystem::train(&bench.dbs, &bench.train, c1);
        let (g8, r8) = GarSystem::train(&bench.dbs, &bench.train, c8);
        // The concurrent per-db prepare must leave the training signal — and
        // therefore the serialized models — byte-identical.
        assert_eq!(r1.retrieval_triples, r8.retrieval_triples);
        assert_eq!(r1.rerank_lists, r8.rerank_lists);
        assert_eq!(g1.retrieval.to_bytes(), g8.retrieval.to_bytes());
        assert_eq!(g1.rerank.to_bytes(), g8.rerank.to_bytes());
    }

    #[test]
    fn cached_prepare_round_trips_bit_identical() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 35,
        });
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, tiny_config());
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench
            .dev
            .iter()
            .filter(|e| &e.db == db_name)
            .map(|e| e.sql.clone())
            .collect();
        let dir = crate::cache::scratch_dir("roundtrip");
        let cache = PrepareCache::new(&dir).unwrap();

        let before = gar_obs::global().snapshot();
        let cold = gar.prepare_eval_db_cached(db, &gold, 4, Some(&cache));
        assert_eq!(cache.len(), 1, "cold prepare did not store an artifact");
        let warm = gar.prepare_eval_db_cached(db, &gold, 4, Some(&cache));
        let after = gar_obs::global().snapshot();
        let hits = |s: &gar_obs::Snapshot, n: &str| s.counter(n).unwrap_or(0);
        assert!(hits(&after, "prep.cache_hit") >= hits(&before, "prep.cache_hit") + 1);
        assert!(hits(&after, "prep.cache_miss") >= hits(&before, "prep.cache_miss") + 1);

        // The decoded pool is bit-identical to the cold one: entries,
        // embeddings, and index answers.
        assert_eq!(warm.db_name, cold.db_name);
        assert_eq!(warm.entries.len(), cold.entries.len());
        for (a, b) in cold.entries.iter().zip(&warm.entries) {
            assert_eq!(gar_sql::to_sql(&a.sql), gar_sql::to_sql(&b.sql));
            assert_eq!(a.dialect, b.dialect);
        }
        for (a, b) in cold.embeds.iter().zip(&warm.embeds) {
            assert_eq!(a.len(), b.len());
            let eq = a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(eq, "cached embeddings diverged");
        }
        for ex in bench.dev.iter().filter(|e| &e.db == db_name).take(5) {
            let q = gar.retrieval.encode(&ex.nl);
            let (hc, hw) = (cold.index.search(&q, 10), warm.index.search(&q, 10));
            assert_eq!(hc.len(), hw.len());
            for (c, w) in hc.iter().zip(&hw) {
                assert_eq!(c.id, w.id);
                assert_eq!(c.score.to_bits(), w.score.to_bits());
            }
            // And the full translation pipeline agrees end to end.
            let (tc, tw) = (
                gar.translate(db, &cold, &ex.nl),
                gar.translate(db, &warm, &ex.nl),
            );
            assert_eq!(tc.retrieved, tw.retrieved);
            for (a, b) in tc.ranked.iter().zip(&tw.ranked) {
                assert_eq!(a.entry, b.entry);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }

        // A different gold set keys differently (no false hit).
        let fewer: Vec<Query> = gold.iter().take(gold.len() - 1).cloned().collect();
        let k1 = PrepareCache::key(&gar, db, &gold, SampleProtocol::EvalGold);
        let k2 = PrepareCache::key(&gar, db, &fewer, SampleProtocol::EvalGold);
        assert_ne!(k1, k2);
        // Protocol is part of the identity too.
        let k3 = PrepareCache::key(&gar, db, &gold, SampleProtocol::Explicit);
        assert_ne!(k1, k3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quantized_prepare_serves_exact_scores_and_roundtrips() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 36,
        });
        let mut cfg = tiny_config();
        cfg.quantize = true;
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, cfg);
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        assert!(prepared.index.is_quantized());

        // An exact twin over the same embeddings: quantized retrieval
        // rescores with true f32 dots, so its reported scores are exact and
        // its top-1 agrees with exact search (bit-for-bit score).
        let mut exact = FlatIndex::new(gar.retrieval.embed_dim());
        let ids: Vec<usize> = (0..prepared.embeds.len()).collect();
        exact.add_batch(&ids, &prepared.embeds, 2);
        for ex in bench.dev.iter().filter(|e| &e.db == db_name).take(5) {
            let q = gar.retrieval.encode(&ex.nl);
            let hq = prepared
                .index
                .search_quantized(&q, 10, gar.config.rescore_factor);
            let he = exact.search(&q, 10);
            assert_eq!(hq[0].score.to_bits(), he[0].score.to_bits());
            assert!(hq.iter().any(|h| h.id == he[0].id));
        }

        // The quantized batch path stays bit-identical to sequential.
        let nls: Vec<String> = bench
            .dev
            .iter()
            .filter(|e| &e.db == db_name)
            .map(|e| e.nl.clone())
            .take(6)
            .collect();
        let batch = gar.translate_batch(db, &prepared, &nls);
        for (nl, b) in nls.iter().zip(&batch) {
            let s = gar.translate(db, &prepared, nl);
            assert_eq!(b.retrieved, s.retrieved);
            for (bc, sc) in b.ranked.iter().zip(&s.ranked) {
                assert_eq!(bc.entry, sc.entry);
                assert_eq!(bc.score.to_bits(), sc.score.to_bits());
            }
        }

        // The artifact codec preserves the quantization switch.
        let back = crate::artifact::prepared_from_bytes(&crate::artifact::prepared_to_bytes(
            &prepared,
        ))
        .expect("decodes");
        assert!(back.index.is_quantized());
        let q = gar.retrieval.encode(&bench.dev[0].nl);
        let (a, b) = (
            prepared.index.search_quantized(&q, 10, 4),
            back.index.search_quantized(&q, 10, 4),
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn extend_and_retire_update_prepared_pool_in_place() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 38,
        });
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, tiny_config());
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let samples: Vec<Query> = bench
            .dev
            .iter()
            .filter(|e| &e.db == db_name)
            .map(|e| e.sql.clone())
            .collect();
        assert!(samples.len() >= 4, "need a few samples");
        let split = samples.len() - 2;

        let mut prepared = gar.prepare_with_samples(db, &samples[..split]);
        let before_len = prepared.entries.len();
        let before_dialects: Vec<String> =
            prepared.entries.iter().take(8).map(|e| e.dialect.clone()).collect();

        // Extend with the held-out samples: the pool only grows, existing
        // entries and ids stay put, embeds stay parallel to entries.
        let added = gar.extend_prepared(db, &mut prepared, &samples[split..], 2);
        assert!(added > 0, "extension appended nothing");
        assert_eq!(prepared.entries.len(), before_len + added);
        assert_eq!(prepared.embeds.len(), prepared.entries.len());
        assert_eq!(prepared.index.live_len(), prepared.entries.len());
        for (a, b) in before_dialects.iter().zip(&prepared.entries) {
            assert_eq!(a, &b.dialect, "existing entry moved");
        }
        let pool = PoolIndex::build(&prepared.entries);
        for s in &samples[split..] {
            assert!(pool.covers(&prepared.entries, s), "extension missed a sample");
        }
        // Extending again with the same samples is a no-op (dedup).
        assert_eq!(gar.extend_prepared(db, &mut prepared, &samples[split..], 2), 0);

        // Retire one sample: its entries are tombstoned, never searched.
        let victim = &samples[0];
        let doomed = pool.gold_ids(&prepared.entries, &mask_values(victim));
        assert!(!doomed.is_empty(), "pool does not cover the victim");
        let retired = gar.retire_samples(&mut prepared, std::slice::from_ref(victim));
        assert_eq!(retired, doomed.len());
        assert_eq!(prepared.index.tombstones(), retired);
        for ex in bench.dev.iter().filter(|e| &e.db == db_name).take(6) {
            let tr = gar.translate(db, &prepared, &ex.nl);
            for id in &tr.retrieved {
                assert!(!doomed.contains(id), "retired entry {id} retrieved");
            }
        }
        // Retiring the same sample again finds nothing new.
        assert_eq!(gar.retire_samples(&mut prepared, std::slice::from_ref(victim)), 0);
    }

    #[test]
    fn delta_cache_patches_overlapping_sample_sets_without_reencode() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 39,
        });
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, tiny_config());
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let samples: Vec<Query> = bench
            .dev
            .iter()
            .filter(|e| &e.db == db_name)
            .map(|e| e.sql.clone())
            .collect();
        assert!(samples.len() >= 4);
        let dir = crate::cache::scratch_dir("delta");
        let cache = PrepareCache::new(&dir).unwrap();
        let snap = || gar_obs::global().snapshot();
        let counter = |s: &gar_obs::Snapshot, n: &str| s.counter(n).unwrap_or(0);
        let encodes =
            |s: &gar_obs::Snapshot| s.histogram("prep.encode_us").map(|h| h.count).unwrap_or(0);

        // Cold prepare of the base sample set stores artifact + sidecar.
        let base_samples = &samples[..samples.len() - 1];
        let cold = gar.prepare_with_samples_cached(db, base_samples, 2, Some(&cache));
        assert_eq!(cache.len(), 1);

        // Shrink by one sample: exact miss, but the base pool is patched by
        // tombstoning alone — the encode stage must not run at all.
        let fewer = &samples[..samples.len() - 2];
        let before = snap();
        let patched = gar.prepare_with_samples_cached(db, fewer, 2, Some(&cache));
        let after = snap();
        assert!(
            counter(&after, "prep.cache_delta") >= counter(&before, "prep.cache_delta") + 1,
            "delta path not taken on shrink"
        );
        assert_eq!(encodes(&after), encodes(&before), "shrink patch re-encoded the pool");
        assert_eq!(patched.entries.len(), cold.entries.len());
        let retired_sample = &samples[samples.len() - 2];
        let doomed = PoolIndex::build(&patched.entries)
            .gold_ids(&patched.entries, &mask_values(retired_sample));
        assert!(patched.index.tombstones() >= doomed.len());
        for ex in bench.dev.iter().filter(|e| &e.db == db_name).take(5) {
            let tr = gar.translate(db, &patched, &ex.nl);
            for id in &tr.retrieved {
                assert!(!doomed.contains(id), "retired entry {id} retrieved after patch");
            }
        }
        // Patched pools are not stored under the new exact key.
        assert_eq!(cache.len(), 1, "delta result leaked into the cache");

        // Grow by one sample: the base is patched by extension; only the
        // delta entries are encoded (at most one encode_batch call), and
        // the patched pool covers the added sample.
        let before = snap();
        let grown = gar.prepare_with_samples_cached(db, &samples, 2, Some(&cache));
        let after = snap();
        assert!(
            counter(&after, "prep.cache_delta") >= counter(&before, "prep.cache_delta") + 1,
            "delta path not taken on grow"
        );
        assert!(
            encodes(&after) <= encodes(&before) + 1,
            "grow patch ran more than the delta encode"
        );
        assert!(grown.entries.len() >= cold.entries.len());
        let pool = PoolIndex::build(&grown.entries);
        assert!(
            pool.covers(&grown.entries, &samples[samples.len() - 1]),
            "extension missed the added sample"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gate_on_translate_batch_matches_sequential_bit_identically() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 24,
        });
        let mut cfg = tiny_config();
        cfg.threads = 3;
        cfg.validate = true;
        cfg.exec_rerank_k = 5;
        cfg.exec_row_budget = 64;
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, cfg);
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);

        let nls: Vec<String> = bench
            .dev
            .iter()
            .filter(|e| &e.db == db_name)
            .map(|e| e.nl.clone())
            .take(9)
            .collect();
        assert!(nls.len() > 4, "need a multi-chunk batch");
        let batch = gar.translate_batch(db, &prepared, &nls);
        for (nl, b) in nls.iter().zip(&batch) {
            let s = gar.translate(db, &prepared, nl);
            assert_eq!(b.retrieved, s.retrieved, "retrieval diverged for {nl:?}");
            assert_eq!(b.ranked.len(), s.ranked.len());
            for (bc, sc) in b.ranked.iter().zip(&s.ranked) {
                assert_eq!(bc.entry, sc.entry, "gated ranking diverged for {nl:?}");
                assert_eq!(bc.score.to_bits(), sc.score.to_bits());
                assert!(exact_match(&bc.sql, &sc.sql));
            }
        }
    }

    #[test]
    fn all_rejected_candidates_fall_back_to_ungated_ranking() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 25,
        });
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, tiny_config());
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let mut prepared = gar.prepare_eval_db(db, &gold);
        // Poison every pool entry so the validator must reject the whole
        // ranked list (the table cannot resolve).
        let ghost = gar_sql::parse("SELECT ghost.x FROM ghost").unwrap();
        for e in &mut prepared.entries {
            e.sql = ghost.clone();
        }

        let base = gar.translate(db, &prepared, &bench.dev[0].nl);
        assert!(!base.ranked.is_empty());

        let mut gated = gar.clone();
        gated.config.validate = true;
        let before = gar_obs::global().snapshot().counter("validate.all_rejected");
        let tr = gated.translate(db, &prepared, &bench.dev[0].nl);
        let after = gar_obs::global().snapshot().counter("validate.all_rejected");

        // Fallback: the ungated ranking survives, and the event is counted.
        assert_eq!(
            after.unwrap_or(0),
            before.unwrap_or(0) + 1,
            "all-rejected fallback not counted"
        );
        assert_eq!(tr.ranked.len(), base.ranked.len());
        for (g, b) in tr.ranked.iter().zip(&base.ranked) {
            assert_eq!(g.entry, b.entry);
            assert_eq!(g.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn gate_survives_empty_pools_k0_and_masked_exec_candidates() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 27,
        });
        let mut cfg = tiny_config();
        cfg.validate = true;
        cfg.exec_rerank_k = 10;
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, cfg);
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();

        // k = 0: no candidates ever reach the gate — must not panic.
        let mut k0 = gar.clone();
        k0.config.k = 0;
        let prepared = k0.prepare_eval_db(db, &gold);
        let tr = k0.translate(db, &prepared, &bench.dev[0].nl);
        assert!(tr.ranked.is_empty());
        assert_eq!(tr.timings.validate_us, 0);
        assert_eq!(tr.timings.exec_rerank_us, 0);

        // Empty pool: same guarantee via the prepared side.
        let empty = PreparedDb {
            db_name: prepared.db_name.clone(),
            entries: Vec::new(),
            embeds: Vec::new(),
            index: FlatIndex::new(gar.retrieval.embed_dim()),
        };
        let tr = gar.translate(db, &empty, &bench.dev[0].nl);
        assert!(tr.ranked.is_empty());

        // Masked candidates reaching the exec stage are skipped, never an
        // error: poison the pool with a never-fillable masked literal and
        // an NL that mentions no values.
        let mut masked_pool = gar.prepare_eval_db(db, &gold);
        let masked = gold
            .iter()
            .map(mask_values)
            .find(|m| gar_sql::masked_count(m) > 0)
            .expect("no gold query carries a literal");
        for e in &mut masked_pool.entries {
            e.sql = masked.clone();
        }
        let tr = gar.translate(db, &masked_pool, "list everything please");
        // Unfilled slots rank, validate (masked = unknown type), and are
        // skipped by the exec stage — order must be untouched.
        assert!(!tr.ranked.is_empty());
        for c in &tr.ranked {
            assert!(gar_sql::masked_count(&c.sql) > 0);
        }
        for w in tr.ranked.windows(2) {
            assert!(w[0].score >= w[1].score, "exec stage reordered skipped candidates");
        }
    }

    #[test]
    fn rerank_ablation_changes_ranking_path() {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 16,
            seed: 23,
        });
        let mut cfg = tiny_config();
        cfg.use_rerank = false;
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, cfg);
        let db_name = &bench.dev[0].db;
        let db = bench.db(db_name).unwrap();
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        let tr = gar.translate(db, &prepared, &bench.dev[0].nl);
        // Retrieval-only scores are cosines in [-1, 1].
        for c in &tr.ranked {
            assert!(c.score <= 1.01 && c.score >= -1.01);
        }
    }
}
