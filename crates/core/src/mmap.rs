//! Read-only memory mapping for artifact files, dependency-free.
//!
//! Zero-copy artifact views ([`crate::artifact::PreparedView`]) borrow
//! their sections straight out of an [`ArtifactMap`]. On Unix the map is a
//! real `mmap(PROT_READ, MAP_PRIVATE)` — loading a pool costs O(pages
//! touched), and untouched sections (a cold tenant's int8 sidecar, the
//! tail of a large pool) never leave the page cache. The libc calls are
//! declared directly (`std` already links libc on these targets), so no
//! new dependency is pulled in.
//!
//! Everywhere else — and whenever the syscall fails — the file is read
//! into a page-aligned heap buffer instead. Both representations expose
//! the identical `&[u8]` with page alignment, so the artifact layer's
//! section alignment checks behave the same on either path; only the
//! loading cost differs.

use std::io;
use std::path::Path;
use std::ptr::NonNull;

/// Section alignment of zero-copy artifacts: one 4 KiB page. Page
/// alignment of the mapping base plus page-aligned section offsets give
/// every section at least this alignment, comfortably above the 4-byte
/// requirement of the `f32` reinterpret casts.
pub const PAGE: usize = 4096;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    /// `mmap`'s error return (`MAP_FAILED`).
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// An immutable byte buffer backing a loaded artifact: a read-only file
/// mapping when the platform provides one, a page-aligned heap copy
/// otherwise. The base address is page-aligned in both cases.
#[derive(Debug)]
pub struct ArtifactMap {
    ptr: NonNull<u8>,
    len: usize,
    /// `true`: `munmap` on drop; `false`: heap buffer to deallocate.
    mapped: bool,
}

// The buffer is immutable for the map's whole lifetime and owned
// exclusively by it, so sharing references across threads is safe.
unsafe impl Send for ArtifactMap {}
unsafe impl Sync for ArtifactMap {}

impl ArtifactMap {
    /// Map `path` read-only, falling back to a page-aligned read when
    /// mapping is unavailable. Records the mapped byte count in the
    /// `artifact.mmap_bytes` counter on the mmap path.
    pub fn open(path: &Path) -> io::Result<ArtifactMap> {
        #[cfg(unix)]
        {
            match Self::open_mmap(path) {
                Ok(map) => {
                    crate::metrics::metrics().mmap_bytes.add(map.len as u64);
                    return Ok(map);
                }
                Err(_) => { /* fall through to the aligned read */ }
            }
        }
        let bytes = std::fs::read(path)?;
        Ok(Self::from_bytes(&bytes))
    }

    /// A map over a copy of `data` in a page-aligned heap buffer — the
    /// fallback loading path, also handy for building views over
    /// in-memory artifacts in tests.
    pub fn from_bytes(data: &[u8]) -> ArtifactMap {
        if data.is_empty() {
            return ArtifactMap {
                ptr: NonNull::dangling(),
                len: 0,
                mapped: false,
            };
        }
        let layout = std::alloc::Layout::from_size_align(data.len(), PAGE)
            .expect("artifact size overflows the aligned layout");
        // SAFETY: layout has non-zero size; allocation failure aborts via
        // handle_alloc_error; the copy writes exactly `len` bytes into the
        // fresh buffer.
        let ptr = unsafe {
            let p = std::alloc::alloc(layout);
            if p.is_null() {
                std::alloc::handle_alloc_error(layout);
            }
            std::ptr::copy_nonoverlapping(data.as_ptr(), p, data.len());
            NonNull::new_unchecked(p)
        };
        ArtifactMap {
            ptr,
            len: data.len(),
            mapped: false,
        }
    }

    #[cfg(unix)]
    fn open_mmap(path: &Path) -> io::Result<ArtifactMap> {
        use std::os::fd::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "artifact too large"))?;
        if len == 0 {
            // mmap rejects zero-length mappings; an empty artifact needs
            // no buffer at all.
            return Ok(ArtifactMap {
                ptr: NonNull::dangling(),
                len: 0,
                mapped: false,
            });
        }
        // SAFETY: fd is open for the duration of the call; a MAP_PRIVATE +
        // PROT_READ mapping of a regular file has no aliasing obligations;
        // failure is reported as MAP_FAILED and checked.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(ArtifactMap {
            // SAFETY: checked non-null above.
            ptr: unsafe { NonNull::new_unchecked(ptr.cast()) },
            len,
            mapped: true,
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe one live allocation (or len == 0, where
        // a dangling pointer is allowed); the buffer is immutable.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Byte length of the map.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for an empty map.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when backed by a real file mapping (as opposed to the
    /// aligned-read fallback buffer).
    pub fn is_mmapped(&self) -> bool {
        self.mapped
    }
}

impl std::ops::Deref for ArtifactMap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl Drop for ArtifactMap {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        if self.mapped {
            #[cfg(unix)]
            // SAFETY: ptr/len are exactly what mmap returned.
            unsafe {
                sys::munmap(self.ptr.as_ptr().cast(), self.len);
            }
        } else {
            // SAFETY: allocated in from_bytes with this exact layout.
            unsafe {
                std::alloc::dealloc(
                    self.ptr.as_ptr(),
                    std::alloc::Layout::from_size_align_unchecked(self.len, PAGE),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_is_page_aligned_and_roundtrips() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let map = ArtifactMap::from_bytes(&data);
        assert_eq!(map.bytes(), &data[..]);
        assert_eq!(map.bytes().as_ptr() as usize % PAGE, 0);
        assert!(!map.is_mmapped());
    }

    #[test]
    fn empty_map_is_fine() {
        let map = ArtifactMap::from_bytes(&[]);
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
    }

    #[test]
    fn open_maps_a_real_file_page_aligned() {
        let dir = crate::cache::scratch_dir("mmap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        let map = ArtifactMap::open(&path).expect("open");
        assert_eq!(map.bytes(), &data[..]);
        assert_eq!(map.bytes().as_ptr() as usize % PAGE, 0);
        // On Unix this should be a real mapping; elsewhere the fallback
        // buffer must still satisfy the same contract (checked above).
        #[cfg(unix)]
        assert!(map.is_mmapped());
        drop(map);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_of_empty_file_yields_empty_map() {
        let dir = crate::cache::scratch_dir("mmap-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = ArtifactMap::open(&path).expect("open");
        assert!(map.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
