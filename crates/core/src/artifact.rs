//! Artifact persistence: trained systems and prepared databases.
//!
//! GAR's pipeline is split into an offline phase (generalize → dialect →
//! train → encode) and an online phase (translate). These codecs make the
//! split real: a deployment trains once, persists the [`GarSystem`] and a
//! [`PreparedDb`] per database, and serves translations from the loaded
//! artifacts.
//!
//! Two on-disk generations coexist:
//!
//! - **v2 (legacy)** reuses `gar-ltr`'s length-prefixed little-endian
//!   layout (magic `GAR1`); kind 3 = system, kind 4 = prepared database.
//!   Decoding copies everything through `Vec`s and re-parses every SQL
//!   string, so loading costs O(pool bytes).
//! - **v3 (zero-copy, magic `GARZ`)** lays the same payload out in
//!   page-aligned sections — entry metadata, raw embeddings, normalized
//!   index rows, the int8 sidecar, model blobs — with a fixed section
//!   table, so a memory-mapped file ([`crate::mmap::ArtifactMap`]) can be
//!   used *in place*: [`PreparedView`]/[`ModelView`] borrow straight from
//!   the mapping, and loading costs O(pages touched).
//!
//! Encoders emit v3 whenever the pool is in canonical layout (entry ids ==
//! positions, no tombstones) and fall back to the v2 writer otherwise;
//! decoders sniff the magic and accept both, so every v2 artifact written
//! by earlier releases keeps loading. [`PreparedPool::from_map`] prefers
//! the borrowed view and falls back to the owned decode on legacy,
//! misaligned, or foreign-endian input.

use crate::mmap::ArtifactMap;
use crate::prepare::DialectEntry;
use crate::system::{GarConfig, GarSystem, PreparedDb};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gar_ltr::persist::{read_header, write_header, PersistError};
use gar_ltr::{RerankModel, RetrievalModel};
use gar_sql::Query;
use gar_vecindex::{FlatIndex, FlatView};
use std::ops::Range;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Errors from decoding a core artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// Underlying codec error.
    Persist(PersistError),
    /// A stored SQL string failed to re-parse.
    BadSql(String),
    /// Malformed UTF-8 or layout.
    Corrupt,
    /// Filesystem error while opening or mapping an artifact file.
    Io(String),
    /// The artifact cannot be served zero-copy on this target — legacy v2
    /// format, a misaligned section, or a big-endian host. Callers fall
    /// back to the owned decode, which handles all three.
    Misaligned,
}

impl From<PersistError> for ArtifactError {
    fn from(e: PersistError) -> Self {
        ArtifactError::Persist(e)
    }
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Persist(e) => write!(f, "artifact codec: {e}"),
            ArtifactError::BadSql(s) => write!(f, "stored SQL does not parse: {s}"),
            ArtifactError::Corrupt => write!(f, "corrupt artifact"),
            ArtifactError::Io(e) => write!(f, "artifact io: {e}"),
            ArtifactError::Misaligned => {
                write!(f, "artifact not viewable zero-copy on this target")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

// ---------------------------------------------------------------------------
// v3 zero-copy layout
// ---------------------------------------------------------------------------
//
// byte 0   magic  b"GARZ"
// byte 4   u32    version (= 3)
// byte 8   u32    kind (3 = system, 4 = prepared)
// byte 12  u32    flags (prepared: bit0 quantized; system: bit0 use_rerank)
// byte 16  u64    n   (prepared: entry count; system: config.k)
// byte 24  u64    dim (prepared: embedding width; system: 0)
// byte 32  4 × (u64 offset, u64 length)   section table
// byte 96  u32    name length + name bytes (prepared: db name; system: "")
//
// Prepared sections: 0 = entry metadata (per entry: u32 sql len + sql
// bytes, u32 dialect len + dialect bytes; byte-oriented, follows the name
// unaligned), 1 = raw embeddings (n × dim f32 LE, page-aligned), 2 =
// normalized index rows (the exact bytes of `FlatIndex::raw_data`,
// page-aligned), 3 = int8 sidecar (n × dim codes when quantized, else
// empty). System sections: 0 = retrieval model blob, 1 = re-ranker blob,
// 2/3 empty. All integers and floats little-endian.

const V3_MAGIC: [u8; 4] = *b"GARZ";
const V3_VERSION: u32 = 3;
const V3_KIND_SYSTEM: u32 = 3;
const V3_KIND_PREPARED: u32 = 4;
const V3_HEADER_LEN: usize = 96;

use crate::mmap::PAGE;

/// `true` when `data` opens with the v3 zero-copy magic (`GARZ`).
pub fn is_v3(data: &[u8]) -> bool {
    data.len() >= 4 && data[..4] == V3_MAGIC
}

fn write_u32_at(out: &mut [u8], off: usize, v: u32) {
    out[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn write_u64_at(out: &mut [u8], off: usize, v: u64) {
    out[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn read_u32_at(data: &[u8], off: usize) -> Result<u32, ArtifactError> {
    data.get(off..off + 4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        .ok_or(ArtifactError::Corrupt)
}

fn read_u64_at(data: &[u8], off: usize) -> Result<u64, ArtifactError> {
    data.get(off..off + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .ok_or(ArtifactError::Corrupt)
}

/// Zero-pad `out` to the next page boundary so the section that follows
/// starts page-aligned both in the file and in a page-aligned mapping.
fn pad_to_page(out: &mut Vec<u8>) {
    let rem = out.len() % PAGE;
    if rem != 0 {
        out.resize(out.len() + (PAGE - rem), 0);
    }
}

/// Parsed v3 fixed header: every range is bounds-checked against the
/// buffer before this struct exists, so downstream slicing cannot panic.
struct V3Header {
    kind: u32,
    flags: u32,
    n: usize,
    dim: usize,
    name: Range<usize>,
    sections: [Range<usize>; 4],
}

impl V3Header {
    fn parse(data: &[u8]) -> Result<V3Header, ArtifactError> {
        if !is_v3(data) || read_u32_at(data, 4)? != V3_VERSION {
            return Err(ArtifactError::Corrupt);
        }
        let kind = read_u32_at(data, 8)?;
        let flags = read_u32_at(data, 12)?;
        let n = usize::try_from(read_u64_at(data, 16)?).map_err(|_| ArtifactError::Corrupt)?;
        let dim = usize::try_from(read_u64_at(data, 24)?).map_err(|_| ArtifactError::Corrupt)?;
        let mut sections = [0..0, 0..0, 0..0, 0..0];
        for (s, range) in sections.iter_mut().enumerate() {
            let off = usize::try_from(read_u64_at(data, 32 + 16 * s)?)
                .map_err(|_| ArtifactError::Corrupt)?;
            let len = usize::try_from(read_u64_at(data, 40 + 16 * s)?)
                .map_err(|_| ArtifactError::Corrupt)?;
            let end = off.checked_add(len).ok_or(ArtifactError::Corrupt)?;
            if end > data.len() {
                return Err(ArtifactError::Corrupt);
            }
            *range = off..end;
        }
        let name_len = read_u32_at(data, V3_HEADER_LEN)? as usize;
        let name_start = V3_HEADER_LEN + 4;
        let name_end = name_start.checked_add(name_len).ok_or(ArtifactError::Corrupt)?;
        if name_end > data.len() {
            return Err(ArtifactError::Corrupt);
        }
        Ok(V3Header {
            kind,
            flags,
            n,
            dim,
            name: name_start..name_end,
            sections,
        })
    }
}

/// Start a v3 buffer: fixed header (section table zeroed, patched by the
/// caller) followed by the length-prefixed name.
fn v3_header(kind: u32, flags: u32, n: u64, dim: u64, name: &str) -> Vec<u8> {
    let mut out = vec![0u8; V3_HEADER_LEN];
    out[..4].copy_from_slice(&V3_MAGIC);
    write_u32_at(&mut out, 4, V3_VERSION);
    write_u32_at(&mut out, 8, kind);
    write_u32_at(&mut out, 12, flags);
    write_u64_at(&mut out, 16, n);
    write_u64_at(&mut out, 24, dim);
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out
}

fn patch_section_table(out: &mut [u8], sections: &[(usize, usize); 4]) {
    for (s, (off, len)) in sections.iter().enumerate() {
        write_u64_at(out, 32 + 16 * s, *off as u64);
        write_u64_at(out, 40 + 16 * s, *len as u64);
    }
}

fn f32s_from_le(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, ArtifactError> {
    if buf.remaining() < 4 {
        return Err(ArtifactError::Corrupt);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(ArtifactError::Corrupt);
    }
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec()).map_err(|_| ArtifactError::Corrupt)
}

/// Serialize a trained system (both models + the inference-relevant
/// configuration switches) in the v3 zero-copy layout: section 0 holds
/// the retrieval model blob, section 1 (page-aligned) the re-ranker blob,
/// so a [`ModelView`] over the mapped file can hand either blob out
/// without copying the other.
pub fn system_to_bytes(sys: &GarSystem) -> Vec<u8> {
    let mut out = v3_header(
        V3_KIND_SYSTEM,
        u32::from(sys.config.use_rerank),
        sys.config.k as u64,
        0,
        "",
    );
    let mut sections = [(0usize, 0usize); 4];
    let off = out.len();
    out.extend_from_slice(&sys.retrieval.to_bytes());
    sections[0] = (off, out.len() - off);
    pad_to_page(&mut out);
    let off = out.len();
    out.extend_from_slice(&sys.rerank.to_bytes());
    sections[1] = (off, out.len() - off);
    sections[2] = (out.len(), 0);
    sections[3] = (out.len(), 0);
    patch_section_table(&mut out, &sections);
    out
}

/// Serialize a trained system in the legacy v2 (`GAR1`) layout — kept so
/// migration tests and older readers stay exercised. New code should use
/// [`system_to_bytes`].
pub fn system_to_bytes_legacy(sys: &GarSystem) -> Vec<u8> {
    let mut buf = BytesMut::new();
    write_header(&mut buf, 3);
    buf.put_u8(u8::from(sys.config.use_rerank));
    buf.put_u32_le(sys.config.k as u32);
    let retrieval = sys.retrieval.to_bytes();
    buf.put_u32_le(retrieval.len() as u32);
    buf.put_slice(&retrieval);
    let rerank = sys.rerank.to_bytes();
    buf.put_u32_le(rerank.len() as u32);
    buf.put_slice(&rerank);
    buf.to_vec()
}

/// Restore a [`GarSystem`] from the two model blobs plus the persisted
/// switches — the shared tail of every system decode path.
fn system_from_parts(
    use_rerank: bool,
    k: usize,
    retrieval: &[u8],
    rerank: &[u8],
) -> Result<GarSystem, ArtifactError> {
    let retrieval = RetrievalModel::from_bytes(retrieval)?;
    let rerank = RerankModel::from_bytes(rerank)?;
    let mut config = GarConfig {
        use_rerank,
        k,
        ..GarConfig::default()
    };
    config.retrieval = retrieval.config.clone();
    config.rerank = rerank.config.clone();
    Ok(GarSystem {
        config,
        retrieval,
        rerank,
    })
}

fn system_from_v3(data: &[u8]) -> Result<GarSystem, ArtifactError> {
    let h = V3Header::parse(data)?;
    if h.kind != V3_KIND_SYSTEM {
        return Err(ArtifactError::Corrupt);
    }
    system_from_parts(
        h.flags & 1 != 0,
        h.n,
        &data[h.sections[0].clone()],
        &data[h.sections[1].clone()],
    )
}

/// Deserialize a trained system (v3 or legacy v2, sniffed by magic).
/// Training-only configuration fields come back as defaults; everything
/// the online path needs is restored.
pub fn system_from_bytes(data: &[u8]) -> Result<GarSystem, ArtifactError> {
    if is_v3(data) {
        return system_from_v3(data);
    }
    let mut buf = Bytes::copy_from_slice(data);
    if read_header(&mut buf)? != 3 {
        return Err(PersistError::BadMagic.into());
    }
    if buf.remaining() < 5 {
        return Err(ArtifactError::Corrupt);
    }
    let use_rerank = buf.get_u8() != 0;
    let k = buf.get_u32_le() as usize;

    let n = checked_len(&mut buf)?;
    let retrieval = buf.copy_to_bytes(n);
    let n = checked_len(&mut buf)?;
    let rerank = buf.copy_to_bytes(n);
    system_from_parts(use_rerank, k, &retrieval, &rerank)
}

/// A zero-copy view over a v3 system artifact: the two model blobs are
/// borrowed straight from the mapping, so inspecting one model (or
/// handing the bytes to a loader) never copies the other. Model structs
/// themselves own their weights, so [`ModelView::to_system`] is the owned
/// decode — the view's win is section access and cheap open.
#[derive(Debug)]
pub struct ModelView {
    map: Arc<ArtifactMap>,
    use_rerank: bool,
    k: usize,
    retrieval: Range<usize>,
    rerank: Range<usize>,
}

impl ModelView {
    /// Map `path` and build a view over it. Legacy v2 files report
    /// [`ArtifactError::Misaligned`]; fall back to [`system_from_bytes`].
    pub fn open(path: &Path) -> Result<ModelView, ArtifactError> {
        let map = ArtifactMap::open(path).map_err(|e| ArtifactError::Io(e.to_string()))?;
        Self::from_map(Arc::new(map))
    }

    /// Build a view over an already-loaded map (shared, so several views
    /// and a registry can hold the same mapping).
    pub fn from_map(map: Arc<ArtifactMap>) -> Result<ModelView, ArtifactError> {
        if !is_v3(&map) {
            return Err(ArtifactError::Misaligned);
        }
        let h = V3Header::parse(&map)?;
        if h.kind != V3_KIND_SYSTEM {
            return Err(ArtifactError::Corrupt);
        }
        Ok(ModelView {
            use_rerank: h.flags & 1 != 0,
            k: h.n,
            retrieval: h.sections[0].clone(),
            rerank: h.sections[1].clone(),
            map,
        })
    }

    /// The persisted `use_rerank` switch.
    pub fn use_rerank(&self) -> bool {
        self.use_rerank
    }

    /// The persisted retrieval threshold k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The retrieval-model blob, borrowed from the mapping.
    pub fn retrieval_bytes(&self) -> &[u8] {
        &self.map.bytes()[self.retrieval.clone()]
    }

    /// The re-ranker blob, borrowed from the mapping.
    pub fn rerank_bytes(&self) -> &[u8] {
        &self.map.bytes()[self.rerank.clone()]
    }

    /// Decode the full owned [`GarSystem`] from the viewed sections.
    pub fn to_system(&self) -> Result<GarSystem, ArtifactError> {
        system_from_parts(
            self.use_rerank,
            self.k,
            self.retrieval_bytes(),
            self.rerank_bytes(),
        )
    }
}

fn checked_len(buf: &mut Bytes) -> Result<usize, ArtifactError> {
    if buf.remaining() < 4 {
        return Err(ArtifactError::Corrupt);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(ArtifactError::Corrupt);
    }
    Ok(n)
}

/// `true` when the pool is in the canonical layout the v3 zero-copy
/// format can represent: entry ids are positions (no tombstones, no
/// compaction drift) and entries/embeddings/index rows are parallel.
fn pool_is_canonical(p: &PreparedDb) -> bool {
    let dim = p.index.dim();
    p.index.ids_are_positions()
        && p.index.len() == p.entries.len()
        && p.embeds.len() == p.entries.len()
        && p.embeds.iter().all(|e| e.len() == dim)
}

/// Serialize a prepared database (candidate SQL + dialects + embeddings).
/// Canonical pools — which is every cold-prepared or cache-loaded pool —
/// are written in the v3 zero-copy layout; pools with tombstones or
/// compaction drift fall back to the legacy v2 writer, whose decode
/// rebuilds the index from scratch.
pub fn prepared_to_bytes(p: &PreparedDb) -> Vec<u8> {
    if pool_is_canonical(p) {
        prepared_to_bytes_v3(p)
    } else {
        prepared_to_bytes_legacy(p)
    }
}

fn prepared_to_bytes_v3(p: &PreparedDb) -> Vec<u8> {
    let n = p.entries.len();
    let dim = p.index.dim();
    let quantized = p.index.is_quantized();
    let mut out = v3_header(
        V3_KIND_PREPARED,
        u32::from(quantized),
        n as u64,
        dim as u64,
        &p.db_name,
    );
    let mut sections = [(0usize, 0usize); 4];

    // Section 0: entry metadata, byte-oriented, directly after the name.
    let off = out.len();
    for e in &p.entries {
        let sql = gar_sql::to_sql(&e.sql);
        out.extend_from_slice(&(sql.len() as u32).to_le_bytes());
        out.extend_from_slice(sql.as_bytes());
        out.extend_from_slice(&(e.dialect.len() as u32).to_le_bytes());
        out.extend_from_slice(e.dialect.as_bytes());
    }
    sections[0] = (off, out.len() - off);

    // Section 1: raw (unnormalized) embeddings, page-aligned.
    pad_to_page(&mut out);
    let off = out.len();
    for emb in &p.embeds {
        for &v in emb {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    sections[1] = (off, out.len() - off);

    // Section 2: the index's normalized rows, byte-exact, page-aligned —
    // FlatView scans over these bits match FlatIndex scans over the pool.
    pad_to_page(&mut out);
    let off = out.len();
    for &v in p.index.raw_data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    sections[2] = (off, out.len() - off);

    // Section 3: the int8 sidecar, byte-exact, page-aligned.
    pad_to_page(&mut out);
    let off = out.len();
    if quantized {
        out.extend(p.index.raw_qdata().iter().map(|&c| c as u8));
    }
    sections[3] = (off, out.len() - off);

    patch_section_table(&mut out, &sections);
    out
}

/// Serialize a prepared database in the legacy v2 (`GAR1`) layout — the
/// fallback for non-canonical pools, kept public so migration coverage
/// can exercise old readers. New code should use [`prepared_to_bytes`].
pub fn prepared_to_bytes_legacy(p: &PreparedDb) -> Vec<u8> {
    let mut buf = BytesMut::new();
    write_header(&mut buf, 4);
    put_str(&mut buf, &p.db_name);
    buf.put_u32_le(p.entries.len() as u32);
    let dim = p.embeds.first().map(Vec::len).unwrap_or(0);
    buf.put_u32_le(dim as u32);
    // Quantization flag: int8 codes are re-derived from the f32 embeddings
    // on decode (quantization is deterministic), so only the switch is
    // stored, not the codes.
    buf.put_u8(u8::from(p.index.is_quantized()));
    for (e, emb) in p.entries.iter().zip(&p.embeds) {
        put_str(&mut buf, &gar_sql::to_sql(&e.sql));
        put_str(&mut buf, &e.dialect);
        for &v in emb {
            buf.put_f32_le(v);
        }
    }
    buf.to_vec()
}

/// Walk the v3 entry-metadata section, yielding byte ranges (relative to
/// `base`) of each entry's SQL and dialect strings, UTF-8 validated.
fn v3_meta_spans(
    meta: &[u8],
    base: usize,
    n: usize,
) -> Result<Vec<(Range<usize>, Range<usize>)>, ArtifactError> {
    // Every entry costs at least two 4-byte length prefixes, so a header
    // claiming more entries than the section could hold is corrupt — and
    // this bound also keeps the reservation below honest.
    if n > meta.len() / 8 {
        return Err(ArtifactError::Corrupt);
    }
    fn take(
        meta: &[u8],
        base: usize,
        pos: &mut usize,
    ) -> Result<Range<usize>, ArtifactError> {
        let len = read_u32_at(meta, *pos)? as usize;
        let start = *pos + 4;
        let end = start.checked_add(len).ok_or(ArtifactError::Corrupt)?;
        let bytes = meta.get(start..end).ok_or(ArtifactError::Corrupt)?;
        std::str::from_utf8(bytes).map_err(|_| ArtifactError::Corrupt)?;
        *pos = end;
        Ok(base + start..base + end)
    }
    let mut spans = Vec::with_capacity(n);
    let mut pos = 0usize;
    for _ in 0..n {
        let sql = take(meta, base, &mut pos)?;
        let dialect = take(meta, base, &mut pos)?;
        spans.push((sql, dialect));
    }
    if pos != meta.len() {
        return Err(ArtifactError::Corrupt);
    }
    Ok(spans)
}

/// Validate the v3 prepared header's cross-section invariants and return
/// (header, quantized).
fn v3_prepared_header(data: &[u8]) -> Result<(V3Header, bool), ArtifactError> {
    let h = V3Header::parse(data)?;
    if h.kind != V3_KIND_PREPARED {
        return Err(ArtifactError::Corrupt);
    }
    let quantized = h.flags & 1 != 0;
    let vec_bytes = h
        .n
        .checked_mul(h.dim)
        .and_then(|x| x.checked_mul(4))
        .ok_or(ArtifactError::Corrupt)?;
    if h.sections[1].len() != vec_bytes
        || h.sections[2].len() != vec_bytes
        || h.sections[3].len() != if quantized { vec_bytes / 4 } else { 0 }
    {
        return Err(ArtifactError::Corrupt);
    }
    Ok((h, quantized))
}

fn prepared_from_v3(data: &[u8]) -> Result<PreparedDb, ArtifactError> {
    let (h, quantized) = v3_prepared_header(data)?;
    let db_name = std::str::from_utf8(&data[h.name.clone()])
        .map_err(|_| ArtifactError::Corrupt)?
        .to_string();
    let meta = &data[h.sections[0].clone()];
    let spans = v3_meta_spans(meta, h.sections[0].start, h.n)?;
    let mut entries = Vec::with_capacity(h.n);
    for (sql_span, dialect_span) in spans {
        // Spans are validated UTF-8 over in-bounds bytes.
        let sql_text = std::str::from_utf8(&data[sql_span]).unwrap();
        let sql =
            gar_sql::parse(sql_text).map_err(|_| ArtifactError::BadSql(sql_text.to_string()))?;
        let dialect = std::str::from_utf8(&data[dialect_span]).unwrap().to_string();
        entries.push(DialectEntry { sql, dialect });
    }
    let embeds: Vec<Vec<f32>> = if h.dim == 0 {
        (0..h.n).map(|_| Vec::new()).collect()
    } else {
        f32s_from_le(&data[h.sections[1].clone()])
            .chunks_exact(h.dim)
            .map(|c| c.to_vec())
            .collect()
    };
    let rows = f32s_from_le(&data[h.sections[2].clone()]);
    let codes = quantized.then(|| {
        data[h.sections[3].clone()]
            .iter()
            .map(|&b| b as i8)
            .collect()
    });
    let index = FlatIndex::from_normalized_parts(h.dim, h.n, rows, codes);
    Ok(PreparedDb {
        db_name,
        entries,
        embeds,
        index,
    })
}

/// Deserialize a prepared database (v3 or legacy v2, sniffed by magic)
/// into a fully owned [`PreparedDb`], rebuilding the vector index. This
/// is the copying path; [`PreparedPool::from_map`] serves v3 files
/// zero-copy instead.
pub fn prepared_from_bytes(data: &[u8]) -> Result<PreparedDb, ArtifactError> {
    if is_v3(data) {
        return prepared_from_v3(data);
    }
    let mut buf = Bytes::copy_from_slice(data);
    if read_header(&mut buf)? != 4 {
        return Err(PersistError::BadMagic.into());
    }
    let db_name = get_str(&mut buf)?;
    if buf.remaining() < 9 {
        return Err(ArtifactError::Corrupt);
    }
    let n = buf.get_u32_le() as usize;
    let dim = buf.get_u32_le() as usize;
    let quantized = buf.get_u8() != 0;
    // Every entry needs at least two 4-byte string length prefixes plus
    // `dim` floats; bound the claimed count by the bytes actually present
    // before reserving, so a corrupt header cannot trigger a huge
    // allocation.
    if n > 0 && buf.remaining() / (8 + dim * 4).max(1) < n {
        return Err(ArtifactError::Corrupt);
    }
    let mut entries = Vec::with_capacity(n);
    let mut embeds = Vec::with_capacity(n);
    let mut index = if quantized {
        FlatIndex::quantized(dim)
    } else {
        FlatIndex::new(dim)
    };
    for i in 0..n {
        let sql_text = get_str(&mut buf)?;
        let sql = gar_sql::parse(&sql_text).map_err(|_| ArtifactError::BadSql(sql_text))?;
        let dialect = get_str(&mut buf)?;
        if buf.remaining() < dim * 4 {
            return Err(ArtifactError::Corrupt);
        }
        let mut emb = Vec::with_capacity(dim);
        for _ in 0..dim {
            emb.push(buf.get_f32_le());
        }
        index.add(i, &emb);
        entries.push(DialectEntry { sql, dialect });
        embeds.push(emb);
    }
    Ok(PreparedDb {
        db_name,
        entries,
        embeds,
        index,
    })
}

/// A zero-copy view over a v3 prepared-pool artifact: embeddings, index
/// rows, and the int8 sidecar are *borrowed* from the page-aligned
/// mapping (loading costs O(pages touched), not O(pool bytes)); entry
/// metadata is span-indexed with SQL re-parsed lazily on first access.
/// Searches run through [`FlatView`] — the exact kernels of the owned
/// index over the exact bytes it serialized — so translations over a view
/// are bit-identical to the owned-decode path.
///
/// Construction validates the full layout: header, section table, span
/// framing, UTF-8 of every string, section alignment, and host
/// endianness. Misaligned or legacy input reports
/// [`ArtifactError::Misaligned`] so callers ([`PreparedPool::from_map`])
/// can fall back to the owned decode.
#[derive(Debug)]
pub struct PreparedView {
    map: Arc<ArtifactMap>,
    db_name: String,
    n: usize,
    dim: usize,
    quantized: bool,
    /// Per entry: (SQL span, dialect span), absolute into the map.
    spans: Vec<(Range<usize>, Range<usize>)>,
    /// Lazily parsed SQL, one slot per entry.
    sqls: Vec<OnceLock<Query>>,
    embeds: Range<usize>,
    rows: Range<usize>,
    codes: Range<usize>,
}

impl PreparedView {
    /// Map `path` and build a view over it.
    pub fn open(path: &Path) -> Result<PreparedView, ArtifactError> {
        let map = ArtifactMap::open(path).map_err(|e| ArtifactError::Io(e.to_string()))?;
        Self::from_map(Arc::new(map))
    }

    /// Build a view over an already-loaded map (shared; a registry can
    /// hold the same mapping behind several views).
    pub fn from_map(map: Arc<ArtifactMap>) -> Result<PreparedView, ArtifactError> {
        if !is_v3(&map) || cfg!(target_endian = "big") {
            // Legacy layout, or a host whose native f32 layout does not
            // match the little-endian file: not viewable in place.
            return Err(ArtifactError::Misaligned);
        }
        let data = map.bytes();
        let (h, quantized) = v3_prepared_header(data)?;
        let base = data.as_ptr() as usize;
        for s in [&h.sections[1], &h.sections[2]] {
            if (base + s.start) % std::mem::align_of::<f32>() != 0 {
                return Err(ArtifactError::Misaligned);
            }
        }
        let db_name = std::str::from_utf8(&data[h.name.clone()])
            .map_err(|_| ArtifactError::Corrupt)?
            .to_string();
        let meta = &data[h.sections[0].clone()];
        let spans = v3_meta_spans(meta, h.sections[0].start, h.n)?;
        Ok(PreparedView {
            db_name,
            n: h.n,
            dim: h.dim,
            quantized,
            sqls: (0..h.n).map(|_| OnceLock::new()).collect(),
            spans,
            embeds: h.sections[1].clone(),
            rows: h.sections[2].clone(),
            codes: h.sections[3].clone(),
            map,
        })
    }

    /// Database id the pool was prepared for.
    pub fn db_name(&self) -> &str {
        &self.db_name
    }

    /// Number of pool entries.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for an empty pool.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `true` when the pool carries the int8 sidecar.
    pub fn is_quantized(&self) -> bool {
        self.quantized
    }

    /// `true` when the backing buffer is a real file mapping (as opposed
    /// to the aligned-read fallback).
    pub fn is_mmapped(&self) -> bool {
        self.map.is_mmapped()
    }

    /// The masked SQL text of entry `i`, borrowed from the mapping.
    pub fn sql_text(&self, i: usize) -> &str {
        // SAFETY: spans were bounds- and UTF-8-validated at construction,
        // and the mapping is immutable.
        unsafe { std::str::from_utf8_unchecked(&self.map.bytes()[self.spans[i].0.clone()]) }
    }

    /// The parsed masked SQL of entry `i`, parsed on first access and
    /// cached.
    ///
    /// Framing and UTF-8 are validated at construction, and artifacts
    /// written by [`prepared_to_bytes`] store `gar_sql::to_sql` output,
    /// which re-parses by round-trip invariant — so the deferred parse
    /// only panics on a hand-corrupted artifact body.
    pub fn sql(&self, i: usize) -> &Query {
        self.sqls[i].get_or_init(|| {
            gar_sql::parse(self.sql_text(i)).expect("stored pool SQL does not re-parse")
        })
    }

    /// The dialect text of entry `i`, borrowed from the mapping.
    pub fn dialect(&self, i: usize) -> &str {
        // SAFETY: as in `sql_text`.
        unsafe { std::str::from_utf8_unchecked(&self.map.bytes()[self.spans[i].1.clone()]) }
    }

    fn f32_section(&self, r: &Range<usize>) -> &[f32] {
        let b = &self.map.bytes()[r.clone()];
        // SAFETY: the range is in bounds, 4-aligned (checked at
        // construction), a multiple of 4 long (header invariant), the host
        // is little-endian (checked), and any bit pattern is a valid f32.
        unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<f32>(), b.len() / 4) }
    }

    /// The raw (unnormalized) embedding of entry `i`, borrowed from the
    /// mapping.
    pub fn embed(&self, i: usize) -> &[f32] {
        assert!(i < self.n, "embed index out of bounds");
        &self.f32_section(&self.embeds)[i * self.dim..(i + 1) * self.dim]
    }

    /// A borrowed flat index over the pool's normalized rows (plus the
    /// int8 sidecar when quantized) — bit-identical search results to the
    /// owned [`FlatIndex`] the artifact was written from.
    pub fn searcher(&self) -> FlatView<'_> {
        let v = FlatView::new(self.dim, self.n, self.f32_section(&self.rows));
        if self.quantized {
            let b = &self.map.bytes()[self.codes.clone()];
            // SAFETY: i8 and u8 have identical layout and alignment.
            let codes = unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<i8>(), b.len()) };
            v.with_codes(codes)
        } else {
            v
        }
    }
}

/// A loaded prepared pool, whichever way it loaded: `Mapped` borrows from
/// a v3 mapping ([`PreparedView`]); `Owned` holds the fully decoded
/// [`PreparedDb`] (legacy files, misaligned input, or big-endian hosts).
/// Both implement [`crate::CandidatePool`], so the translation path never
/// needs to know which it got.
#[derive(Debug)]
pub enum PreparedPool {
    /// Fully decoded, heap-owned pool.
    Owned(PreparedDb),
    /// Zero-copy view over a page-aligned artifact map.
    Mapped(PreparedView),
}

impl PreparedPool {
    /// Load a prepared-pool artifact from disk, preferring the zero-copy
    /// view and falling back to the owned decode where a view cannot
    /// serve ([`ArtifactError::Misaligned`]).
    pub fn load(path: &Path) -> Result<PreparedPool, ArtifactError> {
        let map = ArtifactMap::open(path).map_err(|e| ArtifactError::Io(e.to_string()))?;
        Self::from_map(Arc::new(map))
    }

    /// As [`PreparedPool::load`], over an already-loaded map.
    pub fn from_map(map: Arc<ArtifactMap>) -> Result<PreparedPool, ArtifactError> {
        match PreparedView::from_map(Arc::clone(&map)) {
            Ok(v) => Ok(PreparedPool::Mapped(v)),
            Err(ArtifactError::Misaligned) => {
                prepared_from_bytes(map.bytes()).map(PreparedPool::Owned)
            }
            Err(e) => Err(e),
        }
    }

    /// Database id the pool was prepared for.
    pub fn db_name(&self) -> &str {
        match self {
            PreparedPool::Owned(p) => &p.db_name,
            PreparedPool::Mapped(v) => v.db_name(),
        }
    }

    /// Number of pool entries.
    pub fn len(&self) -> usize {
        match self {
            PreparedPool::Owned(p) => p.entries.len(),
            PreparedPool::Mapped(v) => v.len(),
        }
    }

    /// `true` for an empty pool.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when serving zero-copy from a mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self, PreparedPool::Mapped(_))
    }
}

use crate::system::CandidatePool;
use gar_vecindex::Hit;

impl CandidatePool for PreparedView {
    fn db_name(&self) -> &str {
        self.db_name()
    }
    fn pool_len(&self) -> usize {
        self.n
    }
    fn sql(&self, i: usize) -> &Query {
        PreparedView::sql(self, i)
    }
    fn dialect(&self, i: usize) -> &str {
        PreparedView::dialect(self, i)
    }
    fn embed(&self, i: usize) -> &[f32] {
        PreparedView::embed(self, i)
    }
    fn is_quantized(&self) -> bool {
        self.quantized
    }
    fn search(&self, query: &[f32], k: usize, rescore_factor: usize) -> Vec<Hit> {
        let s = self.searcher();
        if self.quantized {
            s.search_quantized(query, k, rescore_factor)
        } else {
            s.search(query, k)
        }
    }
    fn search_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        rescore_factor: usize,
        threads: usize,
    ) -> Vec<Vec<Hit>> {
        let s = self.searcher();
        if self.quantized {
            s.search_batch_quantized_threads(queries, k, rescore_factor, threads)
        } else {
            s.search_batch_threads(queries, k, threads)
        }
    }
}

impl CandidatePool for PreparedPool {
    fn db_name(&self) -> &str {
        PreparedPool::db_name(self)
    }
    fn pool_len(&self) -> usize {
        self.len()
    }
    fn sql(&self, i: usize) -> &Query {
        match self {
            PreparedPool::Owned(p) => CandidatePool::sql(p, i),
            PreparedPool::Mapped(v) => PreparedView::sql(v, i),
        }
    }
    fn dialect(&self, i: usize) -> &str {
        match self {
            PreparedPool::Owned(p) => CandidatePool::dialect(p, i),
            PreparedPool::Mapped(v) => PreparedView::dialect(v, i),
        }
    }
    fn embed(&self, i: usize) -> &[f32] {
        match self {
            PreparedPool::Owned(p) => CandidatePool::embed(p, i),
            PreparedPool::Mapped(v) => PreparedView::embed(v, i),
        }
    }
    fn is_quantized(&self) -> bool {
        match self {
            PreparedPool::Owned(p) => CandidatePool::is_quantized(p),
            PreparedPool::Mapped(v) => v.is_quantized(),
        }
    }
    fn search(&self, query: &[f32], k: usize, rescore_factor: usize) -> Vec<Hit> {
        match self {
            PreparedPool::Owned(p) => CandidatePool::search(p, query, k, rescore_factor),
            PreparedPool::Mapped(v) => CandidatePool::search(v, query, k, rescore_factor),
        }
    }
    fn search_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        rescore_factor: usize,
        threads: usize,
    ) -> Vec<Vec<Hit>> {
        match self {
            PreparedPool::Owned(p) => {
                CandidatePool::search_batch(p, queries, k, rescore_factor, threads)
            }
            PreparedPool::Mapped(v) => {
                CandidatePool::search_batch(v, queries, k, rescore_factor, threads)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::PrepareConfig;
    use gar_benchmarks::{spider_sim, SpiderSimConfig};
    use gar_ltr::{FeatureConfig, RerankConfig, RetrievalConfig};
    use gar_sql::exact_match;

    /// One shared trained fixture — artifact tests only read from it, and
    /// training it once keeps the suite fast.
    fn tiny_system() -> &'static (GarSystem, gar_benchmarks::Benchmark) {
        static FIX: OnceLock<(GarSystem, gar_benchmarks::Benchmark)> = OnceLock::new();
        FIX.get_or_init(tiny_system_uncached)
    }

    fn tiny_system_uncached() -> (GarSystem, gar_benchmarks::Benchmark) {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 14,
            seed: 61,
        });
        let config = GarConfig {
            prepare: PrepareConfig {
                gen_size: 150,
                ..PrepareConfig::default()
            },
            train_gen_size: 100,
            retrieval: RetrievalConfig {
                features: FeatureConfig {
                    dim: 512,
                    ..FeatureConfig::default()
                },
                hidden: 24,
                embed: 12,
                epochs: 2,
                ..RetrievalConfig::default()
            },
            rerank: RerankConfig {
                embed: 12,
                hidden: 16,
                epochs: 2,
                ..RerankConfig::default()
            },
            ..GarConfig::default()
        };
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, config);
        (gar, bench)
    }

    #[test]
    fn system_roundtrip_preserves_translation_behaviour() {
        let (gar, bench) = tiny_system();
        let back = system_from_bytes(&system_to_bytes(gar)).expect("decodes");

        let db = bench.db(&bench.dev[0].db).expect("dev db");
        let gold: Vec<gar_sql::Query> =
            bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        for ex in bench.dev.iter().take(5) {
            let a = gar.translate(db, &prepared, &ex.nl);
            let b = back.translate(db, &prepared, &ex.nl);
            match (a.top1(), b.top1()) {
                (Some(x), Some(y)) => assert!(exact_match(x, y)),
                (None, None) => {}
                other => panic!("divergent translations: {other:?}"),
            }
        }
    }

    #[test]
    fn prepared_db_roundtrip() {
        let (gar, bench) = tiny_system();
        let db = bench.db(&bench.dev[0].db).expect("dev db");
        let gold: Vec<gar_sql::Query> =
            bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        let back = prepared_from_bytes(&prepared_to_bytes(&prepared)).expect("decodes");
        assert_eq!(back.db_name, prepared.db_name);
        assert_eq!(back.entries.len(), prepared.entries.len());
        assert_eq!(back.embeds, prepared.embeds);
        // Translations through the restored index agree.
        let ex = &bench.dev[0];
        let a = gar.translate(db, &prepared, &ex.nl);
        let b = gar.translate(db, &back, &ex.nl);
        assert_eq!(
            a.ranked.iter().map(|c| c.entry).collect::<Vec<_>>(),
            b.ranked.iter().map(|c| c.entry).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupt_artifacts_are_rejected() {
        let (gar, _) = tiny_system();
        let mut bytes = system_to_bytes(gar);
        bytes.truncate(bytes.len() / 2);
        assert!(system_from_bytes(&bytes).is_err());
        assert!(system_from_bytes(&[1, 2, 3]).is_err());
        assert!(prepared_from_bytes(&system_to_bytes(gar)).is_err());
    }

    #[test]
    fn oversized_prepared_header_is_rejected_without_allocating() {
        // Forge a kind-4 artifact whose header claims u32::MAX entries with
        // a huge dim; decoding must fail fast instead of reserving memory.
        let mut buf = bytes::BytesMut::new();
        gar_ltr::persist::write_header(&mut buf, 4);
        buf.put_u32_le(2); // db_name length
        buf.put_slice(b"db");
        buf.put_u32_le(u32::MAX); // entry count
        buf.put_u32_le(u32::MAX); // dim
        assert!(matches!(
            prepared_from_bytes(&buf.to_vec()),
            Err(ArtifactError::Corrupt)
        ));
    }

    fn tiny_prepared() -> (&'static GarSystem, &'static gar_benchmarks::Benchmark, PreparedDb) {
        let (gar, bench) = tiny_system();
        let db = bench.db(&bench.dev[0].db).expect("dev db");
        let gold: Vec<gar_sql::Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        (gar, bench, prepared)
    }

    #[test]
    fn canonical_pools_encode_v3_and_legacy_still_decodes() {
        let (_, _, prepared) = tiny_prepared();
        let v3 = prepared_to_bytes(&prepared);
        assert!(is_v3(&v3), "canonical pool should take the v3 writer");
        let legacy = prepared_to_bytes_legacy(&prepared);
        assert!(!is_v3(&legacy));
        let a = prepared_from_bytes(&v3).expect("v3 decodes");
        let b = prepared_from_bytes(&legacy).expect("legacy decodes");
        assert_eq!(a.db_name, b.db_name);
        assert_eq!(a.embeds, b.embeds);
        assert_eq!(a.entries.len(), prepared.entries.len());
        for (x, y) in a.entries.iter().zip(&prepared.entries) {
            assert!(exact_match(&x.sql, &y.sql));
            assert_eq!(x.dialect, y.dialect);
        }
        // The v3 decode restores the index byte-exactly (no re-normalize,
        // no re-quantize); the legacy decode rebuilds it by insertion.
        assert_eq!(a.index.raw_data(), prepared.index.raw_data());
    }

    #[test]
    fn prepared_view_borrows_the_exact_pool() {
        let (_, _, prepared) = tiny_prepared();
        let bytes = prepared_to_bytes(&prepared);
        let view = PreparedView::from_map(Arc::new(crate::mmap::ArtifactMap::from_bytes(&bytes)))
            .expect("viewable");
        assert_eq!(view.db_name(), prepared.db_name);
        assert_eq!(view.len(), prepared.entries.len());
        assert_eq!(view.dim(), prepared.index.dim());
        assert!(!view.is_quantized());
        for i in 0..view.len() {
            assert_eq!(view.sql_text(i), gar_sql::to_sql(&prepared.entries[i].sql));
            assert!(exact_match(view.sql(i), &prepared.entries[i].sql));
            assert_eq!(view.dialect(i), prepared.entries[i].dialect);
            assert_eq!(view.embed(i), &prepared.embeds[i][..]);
        }
        for q in prepared.embeds.iter().take(5) {
            let a = prepared.index.search(q, 10);
            let b = view.searcher().search(q, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn translations_over_a_mapped_view_are_bit_identical() {
        let (gar, bench, prepared) = tiny_prepared();
        let db = bench.db(&bench.dev[0].db).expect("dev db");
        let dir = crate::cache::scratch_dir("artifact-v3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.garz");
        std::fs::write(&path, prepared_to_bytes(&prepared)).unwrap();
        let pool = PreparedPool::load(&path).expect("loads");
        assert!(pool.is_mapped(), "v3 file should serve zero-copy");
        for ex in &bench.dev {
            let a = gar.translate(db, &prepared, &ex.nl);
            let b = gar.translate(db, &pool, &ex.nl);
            assert_eq!(a.retrieved, b.retrieved);
            assert_eq!(a.ranked.len(), b.ranked.len());
            for (x, y) in a.ranked.iter().zip(&b.ranked) {
                assert_eq!(x.entry, y.entry);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
                assert!(exact_match(&x.sql, &y.sql));
            }
        }
        drop(pool);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quantized_pools_roundtrip_and_view_bit_identically() {
        let (_, _, mut prepared) = tiny_prepared();
        prepared.index.enable_quantization();
        let bytes = prepared_to_bytes(&prepared);
        assert!(is_v3(&bytes));
        let back = prepared_from_bytes(&bytes).expect("decodes");
        assert!(back.index.is_quantized());
        assert_eq!(back.index.raw_qdata(), prepared.index.raw_qdata());
        let view = PreparedView::from_map(Arc::new(crate::mmap::ArtifactMap::from_bytes(&bytes)))
            .expect("viewable");
        assert!(view.is_quantized());
        for q in prepared.embeds.iter().take(5) {
            let a = prepared.index.search_quantized(q, 10, 4);
            let b = view.searcher().search_quantized(q, 10, 4);
            let c = back.index.search_quantized(q, 10, 4);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
            for (x, y) in a.iter().zip(&c) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn tombstoned_pools_fall_back_to_the_legacy_writer() {
        let (_, _, mut prepared) = tiny_prepared();
        assert!(prepared.index.ids_are_positions());
        prepared.index.remove(0);
        assert!(!prepared.index.ids_are_positions());
        let bytes = prepared_to_bytes(&prepared);
        assert!(!is_v3(&bytes), "non-canonical pool must use the v2 writer");
        assert!(prepared_from_bytes(&bytes).is_ok());
    }

    #[test]
    fn corrupt_v3_artifacts_are_rejected() {
        let (_, _, prepared) = tiny_prepared();
        let bytes = prepared_to_bytes(&prepared);
        // Truncation anywhere in the sections is caught by the table check.
        let mut cut = bytes.clone();
        cut.truncate(cut.len() / 2);
        assert!(prepared_from_bytes(&cut).is_err());
        // A header claiming an absurd entry count fails fast, no big alloc.
        let mut huge = bytes.clone();
        write_u64_at(&mut huge, 16, u64::MAX / 8);
        assert!(matches!(
            prepared_from_bytes(&huge),
            Err(ArtifactError::Corrupt)
        ));
        // A section reaching past the file is caught at header parse.
        let mut oob = bytes.clone();
        write_u64_at(&mut oob, 40, u64::MAX / 2);
        assert!(matches!(
            prepared_from_bytes(&oob),
            Err(ArtifactError::Corrupt)
        ));
        // The same bytes are rejected by the view constructor too.
        assert!(
            PreparedView::from_map(Arc::new(crate::mmap::ArtifactMap::from_bytes(&cut))).is_err()
        );
    }

    #[test]
    fn model_view_serves_blobs_and_legacy_falls_back() {
        let (gar, _) = tiny_system();
        let v3 = system_to_bytes(gar);
        assert!(is_v3(&v3));
        let view = ModelView::from_map(Arc::new(crate::mmap::ArtifactMap::from_bytes(&v3)))
            .expect("viewable");
        assert_eq!(view.k(), gar.config.k);
        assert_eq!(view.use_rerank(), gar.config.use_rerank);
        assert_eq!(view.retrieval_bytes(), &gar.retrieval.to_bytes()[..]);
        assert_eq!(view.rerank_bytes(), &gar.rerank.to_bytes()[..]);
        let sys = view.to_system().expect("decodes");
        assert_eq!(sys.config.k, gar.config.k);

        let legacy = system_to_bytes_legacy(gar);
        assert!(!is_v3(&legacy));
        assert!(system_from_bytes(&legacy).is_ok(), "v2 reader kept");
        assert!(matches!(
            ModelView::from_map(Arc::new(crate::mmap::ArtifactMap::from_bytes(&legacy))),
            Err(ArtifactError::Misaligned)
        ));
    }

    #[test]
    fn prepared_pool_falls_back_to_owned_for_legacy_bytes() {
        let (_, _, prepared) = tiny_prepared();
        let legacy = prepared_to_bytes_legacy(&prepared);
        let pool =
            PreparedPool::from_map(Arc::new(crate::mmap::ArtifactMap::from_bytes(&legacy)))
                .expect("fallback decodes");
        assert!(!pool.is_mapped());
        assert_eq!(pool.db_name(), prepared.db_name);
        assert_eq!(pool.len(), prepared.entries.len());
    }
}
