//! Artifact persistence: trained systems and prepared databases.
//!
//! GAR's pipeline is split into an offline phase (generalize → dialect →
//! train → encode) and an online phase (translate). These codecs make the
//! split real: a deployment trains once, persists the [`GarSystem`] and a
//! [`PreparedDb`] per database, and serves translations from the loaded
//! artifacts.
//!
//! The format reuses `gar-ltr`'s length-prefixed little-endian layout
//! (magic `GAR1`); kind 3 = system, kind 4 = prepared database.

use crate::prepare::DialectEntry;
use crate::system::{GarConfig, GarSystem, PreparedDb};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gar_ltr::persist::{read_header, write_header, PersistError};
use gar_ltr::{RerankModel, RetrievalModel};
use gar_vecindex::FlatIndex;

/// Errors from decoding a core artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// Underlying codec error.
    Persist(PersistError),
    /// A stored SQL string failed to re-parse.
    BadSql(String),
    /// Malformed UTF-8 or layout.
    Corrupt,
}

impl From<PersistError> for ArtifactError {
    fn from(e: PersistError) -> Self {
        ArtifactError::Persist(e)
    }
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Persist(e) => write!(f, "artifact codec: {e}"),
            ArtifactError::BadSql(s) => write!(f, "stored SQL does not parse: {s}"),
            ArtifactError::Corrupt => write!(f, "corrupt artifact"),
        }
    }
}

impl std::error::Error for ArtifactError {}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, ArtifactError> {
    if buf.remaining() < 4 {
        return Err(ArtifactError::Corrupt);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(ArtifactError::Corrupt);
    }
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec()).map_err(|_| ArtifactError::Corrupt)
}

/// Serialize a trained system (both models + the inference-relevant
/// configuration switches).
pub fn system_to_bytes(sys: &GarSystem) -> Vec<u8> {
    let mut buf = BytesMut::new();
    write_header(&mut buf, 3);
    buf.put_u8(u8::from(sys.config.use_rerank));
    buf.put_u32_le(sys.config.k as u32);
    let retrieval = sys.retrieval.to_bytes();
    buf.put_u32_le(retrieval.len() as u32);
    buf.put_slice(&retrieval);
    let rerank = sys.rerank.to_bytes();
    buf.put_u32_le(rerank.len() as u32);
    buf.put_slice(&rerank);
    buf.to_vec()
}

/// Deserialize a trained system. Training-only configuration fields come
/// back as defaults; everything the online path needs is restored.
pub fn system_from_bytes(data: &[u8]) -> Result<GarSystem, ArtifactError> {
    let mut buf = Bytes::copy_from_slice(data);
    if read_header(&mut buf)? != 3 {
        return Err(PersistError::BadMagic.into());
    }
    if buf.remaining() < 5 {
        return Err(ArtifactError::Corrupt);
    }
    let use_rerank = buf.get_u8() != 0;
    let k = buf.get_u32_le() as usize;

    let n = checked_len(&mut buf)?;
    let retrieval = RetrievalModel::from_bytes(&buf.copy_to_bytes(n))?;
    let n = checked_len(&mut buf)?;
    let rerank = RerankModel::from_bytes(&buf.copy_to_bytes(n))?;

    let mut config = GarConfig {
        use_rerank,
        k,
        ..GarConfig::default()
    };
    config.retrieval = retrieval.config.clone();
    config.rerank = rerank.config.clone();
    Ok(GarSystem {
        config,
        retrieval,
        rerank,
    })
}

fn checked_len(buf: &mut Bytes) -> Result<usize, ArtifactError> {
    if buf.remaining() < 4 {
        return Err(ArtifactError::Corrupt);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(ArtifactError::Corrupt);
    }
    Ok(n)
}

/// Serialize a prepared database (candidate SQL + dialects + embeddings).
pub fn prepared_to_bytes(p: &PreparedDb) -> Vec<u8> {
    let mut buf = BytesMut::new();
    write_header(&mut buf, 4);
    put_str(&mut buf, &p.db_name);
    buf.put_u32_le(p.entries.len() as u32);
    let dim = p.embeds.first().map(Vec::len).unwrap_or(0);
    buf.put_u32_le(dim as u32);
    // Quantization flag: int8 codes are re-derived from the f32 embeddings
    // on decode (quantization is deterministic), so only the switch is
    // stored, not the codes.
    buf.put_u8(u8::from(p.index.is_quantized()));
    for (e, emb) in p.entries.iter().zip(&p.embeds) {
        put_str(&mut buf, &gar_sql::to_sql(&e.sql));
        put_str(&mut buf, &e.dialect);
        for &v in emb {
            buf.put_f32_le(v);
        }
    }
    buf.to_vec()
}

/// Deserialize a prepared database, rebuilding the vector index.
pub fn prepared_from_bytes(data: &[u8]) -> Result<PreparedDb, ArtifactError> {
    let mut buf = Bytes::copy_from_slice(data);
    if read_header(&mut buf)? != 4 {
        return Err(PersistError::BadMagic.into());
    }
    let db_name = get_str(&mut buf)?;
    if buf.remaining() < 9 {
        return Err(ArtifactError::Corrupt);
    }
    let n = buf.get_u32_le() as usize;
    let dim = buf.get_u32_le() as usize;
    let quantized = buf.get_u8() != 0;
    // Every entry needs at least two 4-byte string length prefixes plus
    // `dim` floats; bound the claimed count by the bytes actually present
    // before reserving, so a corrupt header cannot trigger a huge
    // allocation.
    if n > 0 && buf.remaining() / (8 + dim * 4).max(1) < n {
        return Err(ArtifactError::Corrupt);
    }
    let mut entries = Vec::with_capacity(n);
    let mut embeds = Vec::with_capacity(n);
    let mut index = if quantized {
        FlatIndex::quantized(dim)
    } else {
        FlatIndex::new(dim)
    };
    for i in 0..n {
        let sql_text = get_str(&mut buf)?;
        let sql = gar_sql::parse(&sql_text).map_err(|_| ArtifactError::BadSql(sql_text))?;
        let dialect = get_str(&mut buf)?;
        if buf.remaining() < dim * 4 {
            return Err(ArtifactError::Corrupt);
        }
        let mut emb = Vec::with_capacity(dim);
        for _ in 0..dim {
            emb.push(buf.get_f32_le());
        }
        index.add(i, &emb);
        entries.push(DialectEntry { sql, dialect });
        embeds.push(emb);
    }
    Ok(PreparedDb {
        db_name,
        entries,
        embeds,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::PrepareConfig;
    use gar_benchmarks::{spider_sim, SpiderSimConfig};
    use gar_ltr::{FeatureConfig, RerankConfig, RetrievalConfig};
    use gar_sql::exact_match;

    fn tiny_system() -> (GarSystem, gar_benchmarks::Benchmark) {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 14,
            seed: 61,
        });
        let config = GarConfig {
            prepare: PrepareConfig {
                gen_size: 150,
                ..PrepareConfig::default()
            },
            train_gen_size: 100,
            retrieval: RetrievalConfig {
                features: FeatureConfig {
                    dim: 512,
                    ..FeatureConfig::default()
                },
                hidden: 24,
                embed: 12,
                epochs: 2,
                ..RetrievalConfig::default()
            },
            rerank: RerankConfig {
                embed: 12,
                hidden: 16,
                epochs: 2,
                ..RerankConfig::default()
            },
            ..GarConfig::default()
        };
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, config);
        (gar, bench)
    }

    #[test]
    fn system_roundtrip_preserves_translation_behaviour() {
        let (gar, bench) = tiny_system();
        let back = system_from_bytes(&system_to_bytes(&gar)).expect("decodes");

        let db = bench.db(&bench.dev[0].db).expect("dev db");
        let gold: Vec<gar_sql::Query> =
            bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        for ex in bench.dev.iter().take(5) {
            let a = gar.translate(db, &prepared, &ex.nl);
            let b = back.translate(db, &prepared, &ex.nl);
            match (a.top1(), b.top1()) {
                (Some(x), Some(y)) => assert!(exact_match(x, y)),
                (None, None) => {}
                other => panic!("divergent translations: {other:?}"),
            }
        }
    }

    #[test]
    fn prepared_db_roundtrip() {
        let (gar, bench) = tiny_system();
        let db = bench.db(&bench.dev[0].db).expect("dev db");
        let gold: Vec<gar_sql::Query> =
            bench.dev.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        let back = prepared_from_bytes(&prepared_to_bytes(&prepared)).expect("decodes");
        assert_eq!(back.db_name, prepared.db_name);
        assert_eq!(back.entries.len(), prepared.entries.len());
        assert_eq!(back.embeds, prepared.embeds);
        // Translations through the restored index agree.
        let ex = &bench.dev[0];
        let a = gar.translate(db, &prepared, &ex.nl);
        let b = gar.translate(db, &back, &ex.nl);
        assert_eq!(
            a.ranked.iter().map(|c| c.entry).collect::<Vec<_>>(),
            b.ranked.iter().map(|c| c.entry).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupt_artifacts_are_rejected() {
        let (gar, _) = tiny_system();
        let mut bytes = system_to_bytes(&gar);
        bytes.truncate(bytes.len() / 2);
        assert!(system_from_bytes(&bytes).is_err());
        assert!(system_from_bytes(&[1, 2, 3]).is_err());
        assert!(prepared_from_bytes(&system_to_bytes(&gar)).is_err());
    }

    #[test]
    fn oversized_prepared_header_is_rejected_without_allocating() {
        // Forge a kind-4 artifact whose header claims u32::MAX entries with
        // a huge dim; decoding must fail fast instead of reserving memory.
        let mut buf = bytes::BytesMut::new();
        gar_ltr::persist::write_header(&mut buf, 4);
        buf.put_u32_le(2); // db_name length
        buf.put_slice(b"db");
        buf.put_u32_le(u32::MAX); // entry count
        buf.put_u32_le(u32::MAX); // dim
        assert!(matches!(
            prepared_from_bytes(&buf.to_vec()),
            Err(ArtifactError::Corrupt)
        ));
    }
}
