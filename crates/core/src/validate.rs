//! Post-rerank candidate gate (DESIGN.md §12).
//!
//! Two independent checks applied to the ranked candidate list:
//!
//! 1. **Static validation** ([`validate_static`]) — a candidate must
//!    resolve against the workspace schema and satisfy the engine's
//!    well-formedness rules (no aggregates in row context, no bare `*`
//!    in a grouped select, type-compatible predicates, text `LIKE`
//!    patterns, subquery-backed `IN`). Candidates that fail can never
//!    execute, so ranking them is pure noise.
//! 2. **Execution-guided demotion** ([`exec_tiers`]) — the top-k
//!    instantiated candidates are run through `gar-engine` on a
//!    row-sampled copy of the database ([`sample_database`]) under an
//!    explicit step budget ([`EXEC_STEP_BUDGET`]). Candidates that
//!    error are demoted below ones that execute; candidates whose
//!    result is degenerate (the lone empty result among executed
//!    siblings, or an all-NULL projection) sit in between.
//!
//! Both checks are pure functions of `(schema, database, query)`, so the
//! gate produces bit-identical rankings in `translate` and
//! `translate_batch`.

use gar_engine::{execute, Database, ExecError, TableData};
use gar_schema::{resolve_query, ColType, Schema};
use gar_sql::ast::{AggFunc, CmpOp, ColExpr, ColumnRef, Literal, Operand, Query};

/// Why a candidate failed static validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A table or column does not resolve against the schema.
    Unresolved(String),
    /// An aggregate appears in a per-row context (a `WHERE` predicate).
    AggregateInWhere,
    /// A non-`COUNT` aggregate applied to `*`.
    NonCountStarAggregate(AggFunc),
    /// Bare `*` in a grouped/aggregated select list.
    BareStarInGroupedSelect,
    /// `SUM`/`AVG` over a text column.
    NumericAggregateOnText(String),
    /// A comparison whose operands can never share a comparable type
    /// (one side text, the other numeric — always UNKNOWN).
    TypeMismatch(String),
    /// `LIKE` with a pattern that is statically non-text.
    NonTextLikePattern,
    /// `IN`/`NOT IN` whose right-hand side is not a subquery.
    InNeedsSubquery,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Unresolved(s) => write!(f, "unresolved: {s}"),
            ValidationError::AggregateInWhere => write!(f, "aggregate in WHERE"),
            ValidationError::NonCountStarAggregate(a) => write!(f, "{a}(*) is not executable"),
            ValidationError::BareStarInGroupedSelect => write!(f, "bare * in grouped select"),
            ValidationError::NumericAggregateOnText(c) => {
                write!(f, "numeric aggregate over text column {c}")
            }
            ValidationError::TypeMismatch(s) => write!(f, "type mismatch: {s}"),
            ValidationError::NonTextLikePattern => write!(f, "LIKE needs a text pattern"),
            ValidationError::InNeedsSubquery => write!(f, "IN needs a subquery"),
        }
    }
}

/// Check one candidate against the schema: every table/column must
/// resolve, and the query must satisfy the engine's static
/// well-formedness rules. `Ok(())` means the engine will not reject the
/// query for a reason knowable without data (it may still hit a
/// masked literal at runtime — that is the instantiation tier's job).
pub fn validate_static(schema: &Schema, q: &Query) -> Result<(), ValidationError> {
    let resolved = resolve_query(schema, q)
        .map_err(|e| ValidationError::Unresolved(format!("{e:?}")))?;
    check_query(schema, &resolved)
}

fn check_query(schema: &Schema, q: &Query) -> Result<(), ValidationError> {
    // Mirror the engine's grouping decision: grouped iff GROUP BY is
    // non-empty or any select/order item is aggregated.
    let grouped = !q.group_by.is_empty()
        || q.select.items.iter().any(ColExpr::is_aggregated)
        || q.order_by
            .as_ref()
            .map(|ob| ob.items.iter().any(|i| i.expr.is_aggregated()))
            .unwrap_or(false);
    for item in &q.select.items {
        if grouped && item.col.is_star() && item.agg.is_none() {
            return Err(ValidationError::BareStarInGroupedSelect);
        }
        colexpr_type(schema, item)?;
    }
    if let Some(ob) = &q.order_by {
        for item in &ob.items {
            colexpr_type(schema, &item.expr)?;
        }
    }
    for (cond, row_ctx) in q
        .where_
        .iter()
        .map(|c| (c, true))
        .chain(q.having.iter().map(|c| (c, false)))
    {
        for p in &cond.preds {
            if row_ctx
                && (p.lhs.agg.is_some()
                    || matches!(&p.rhs, Operand::Col(c) if c.agg.is_some())
                    || matches!(&p.rhs2, Some(Operand::Col(c)) if c.agg.is_some()))
            {
                return Err(ValidationError::AggregateInWhere);
            }
            let lhs_ty = colexpr_type(schema, &p.lhs)?;
            match p.op {
                CmpOp::Like | CmpOp::NotLike => {
                    // The engine needs a text (or NULL) pattern at
                    // runtime; a statically numeric pattern always errors.
                    if operand_type(schema, &p.rhs)? == Some(ColType::Int)
                        || operand_type(schema, &p.rhs)? == Some(ColType::Float)
                    {
                        return Err(ValidationError::NonTextLikePattern);
                    }
                }
                CmpOp::In | CmpOp::NotIn => {
                    // A masked slot may still be rewritten by
                    // instantiation; any other literal can never become
                    // the set the engine requires.
                    if matches!(&p.rhs, Operand::Lit(l) if !l.is_masked()) {
                        return Err(ValidationError::InNeedsSubquery);
                    }
                }
                _ => {
                    check_compat(lhs_ty, operand_type(schema, &p.rhs)?, p)?;
                    if let Some(rhs2) = &p.rhs2 {
                        check_compat(lhs_ty, operand_type(schema, rhs2)?, p)?;
                    }
                }
            }
            for op in std::iter::once(&p.rhs).chain(p.rhs2.iter()) {
                if let Operand::Subquery(sq) = op {
                    check_query(schema, sq)?;
                }
            }
        }
    }
    if let Some((_, rhs)) = &q.compound {
        check_query(schema, rhs)?;
    }
    Ok(())
}

/// Both types known and on opposite sides of the text/numeric divide:
/// the comparison is UNKNOWN for every row, so the predicate can never
/// hold and the candidate is statically dead.
fn check_compat(
    lhs: Option<ColType>,
    rhs: Option<ColType>,
    p: &gar_sql::ast::Predicate,
) -> Result<(), ValidationError> {
    if let (Some(a), Some(b)) = (lhs, rhs) {
        if a.is_numeric() != b.is_numeric() {
            return Err(ValidationError::TypeMismatch(format!(
                "{} {} {:?}/{:?}",
                p.lhs, p.op, a, b
            )));
        }
    }
    Ok(())
}

fn col_type(schema: &Schema, c: &ColumnRef) -> Option<ColType> {
    let t = c.table.as_deref()?;
    schema.column(t, &c.column).map(|col| col.ty)
}

/// Static result type of a select/predicate expression, if knowable.
/// Also enforces aggregate well-formedness (`SUM`/`AVG` need a numeric
/// column, only `COUNT` accepts `*`).
fn colexpr_type(schema: &Schema, ce: &ColExpr) -> Result<Option<ColType>, ValidationError> {
    match ce.agg {
        None => Ok(if ce.col.is_star() { None } else { col_type(schema, &ce.col) }),
        Some(AggFunc::Count) => Ok(Some(ColType::Int)),
        Some(agg) => {
            if ce.col.is_star() {
                return Err(ValidationError::NonCountStarAggregate(agg));
            }
            let ty = col_type(schema, &ce.col);
            if matches!(agg, AggFunc::Sum | AggFunc::Avg) {
                if ty == Some(ColType::Text) {
                    return Err(ValidationError::NumericAggregateOnText(ce.col.to_string()));
                }
                Ok(Some(ColType::Float))
            } else {
                Ok(ty)
            }
        }
    }
}

fn operand_type(schema: &Schema, op: &Operand) -> Result<Option<ColType>, ValidationError> {
    match op {
        Operand::Lit(Literal::Int(_)) => Ok(Some(ColType::Int)),
        Operand::Lit(Literal::Float(_)) => Ok(Some(ColType::Float)),
        Operand::Lit(Literal::Str(_)) => Ok(Some(ColType::Text)),
        Operand::Lit(Literal::Masked) => Ok(None),
        Operand::Col(c) => colexpr_type(schema, c),
        Operand::Subquery(sq) => match sq.select.items.first() {
            Some(item) => colexpr_type(schema, item),
            None => Ok(None),
        },
    }
}

/// Default nested-loop step budget for execution-guided demotion: a
/// candidate whose FROM-product on the sampled database exceeds this is
/// skipped (kept at its ranked position), never executed.
pub const EXEC_STEP_BUDGET: u64 = 4_000_000;

/// Deterministic row-sampled copy of `db`: the first `row_budget` rows
/// of every table, in stored order. A prefix (rather than a seeded
/// shuffle) keeps the gate a pure function of the database so single
/// and batched translation stay bit-identical.
pub fn sample_database(db: &Database, row_budget: usize) -> Database {
    let tables = db
        .tables
        .iter()
        .map(|(name, t)| {
            (
                name.clone(),
                TableData {
                    name: t.name.clone(),
                    columns: t.columns.clone(),
                    rows: t.rows.iter().take(row_budget).cloned().collect(),
                },
            )
        })
        .collect();
    Database { schema: db.schema.clone(), tables }
}

/// Upper bound on nested-loop work for `q` against `db`: the product of
/// the FROM-table row counts (min 1), summed over the query, its
/// subqueries, and compound arms. Saturating; unknown tables count 1
/// (execution will fail fast anyway).
pub fn estimated_steps(db: &Database, q: &Query) -> u64 {
    let mut total: u64 = q.from.tables.iter().fold(1u64, |acc, t| {
        let n = db.tables.get(t).map(|t| t.rows.len() as u64).unwrap_or(1);
        acc.saturating_mul(n.max(1))
    });
    for sq in q.subqueries() {
        total = total.saturating_add(estimated_steps(db, sq));
    }
    total
}

/// Execution tier of a candidate: lower ranks higher.
/// `0` — executed with a non-degenerate result, or not executed at all
/// (beyond k, masked, or over the step budget);
/// `1` — degenerate result: the *unique* empty result among executed
/// siblings (gold queries legitimately return empty sets, and when they
/// do their near-miss variants usually do too — only a lone empty
/// outlier is a demotion signal), or all rows entirely NULL;
/// `2` — execution error.
pub type ExecTier = u8;

/// Assign execution tiers to `candidates` by running the first `k`
/// through the engine on `db` (normally a [`sample_database`] copy).
/// Candidates with masked literals or an [`estimated_steps`] above
/// `step_budget` are skipped — tier 0, never an error. The returned
/// vector is aligned with `candidates`; entries past `k` are tier 0.
pub fn exec_tiers(db: &Database, candidates: &[&Query], k: usize, step_budget: u64) -> Vec<ExecTier> {
    enum Outcome {
        Skipped,
        Error,
        Rows { n: usize, all_null: bool },
    }
    let k = k.min(candidates.len());
    let outcomes: Vec<Outcome> = candidates[..k]
        .iter()
        .map(|q| {
            if gar_sql::masked_count(q) > 0 || estimated_steps(db, q) > step_budget {
                return Outcome::Skipped;
            }
            match execute(db, q) {
                Ok(rs) => Outcome::Rows {
                    n: rs.rows.len(),
                    all_null: !rs.rows.is_empty()
                        && rs.rows.iter().all(|r| r.iter().all(|d| d.is_null())),
                },
                Err(ExecError::MaskedValue) => Outcome::Skipped,
                Err(_) => Outcome::Error,
            }
        })
        .collect();
    let empties = outcomes
        .iter()
        .filter(|o| matches!(o, Outcome::Rows { n: 0, .. }))
        .count();
    let nonempties = outcomes
        .iter()
        .filter(|o| matches!(o, Outcome::Rows { n, .. } if *n > 0))
        .count();
    let lone_empty = empties == 1 && nonempties >= 1;
    let mut tiers = vec![0u8; candidates.len()];
    for (t, o) in tiers.iter_mut().zip(outcomes.iter()) {
        *t = match o {
            Outcome::Skipped => 0,
            Outcome::Error => 2,
            Outcome::Rows { n: 0, .. } if lone_empty => 1,
            Outcome::Rows { n: 0, .. } => 0,
            Outcome::Rows { all_null: true, .. } => 1,
            Outcome::Rows { .. } => 0,
        };
    }
    tiers
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_engine::Datum;
    use gar_schema::SchemaBuilder;
    use gar_sql::parse;

    fn schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("emp", |t| {
                t.col_int("id").col_text("name").col_float("salary")
            })
            .table("dept", |t| t.col_int("id").col_text("title"))
            .build()
    }

    fn db() -> Database {
        let mut db = Database::empty(schema());
        db.insert("emp", vec![Datum::Int(1), Datum::from("ann"), Datum::Float(10.0)]);
        db.insert("emp", vec![Datum::Int(2), Datum::from("bob"), Datum::Float(20.0)]);
        db.insert("emp", vec![Datum::Int(3), Datum::Null, Datum::Float(30.0)]);
        db.insert("dept", vec![Datum::Int(1), Datum::from("eng")]);
        db
    }

    fn q(sql: &str) -> Query {
        parse(sql).expect(sql)
    }

    #[test]
    fn accepts_well_formed_queries() {
        let s = schema();
        for sql in [
            "SELECT emp.name FROM emp WHERE emp.salary > 15",
            "SELECT COUNT(*) FROM emp",
            "SELECT dept.title, COUNT(*) FROM emp JOIN dept ON emp.id = dept.id GROUP BY dept.title",
            "SELECT emp.name FROM emp WHERE emp.name LIKE 'a%'",
            "SELECT emp.name FROM emp WHERE emp.id IN (SELECT dept.id FROM dept)",
            "SELECT emp.name FROM emp WHERE emp.salary > (SELECT AVG(emp.salary) FROM emp)",
        ] {
            assert_eq!(validate_static(&s, &q(sql)), Ok(()), "{sql}");
        }
    }

    #[test]
    fn rejects_unresolved_tables_and_columns() {
        let s = schema();
        for sql in [
            "SELECT ghost.x FROM ghost",
            "SELECT emp.ghost FROM emp",
            "SELECT emp.name FROM emp WHERE emp.id IN (SELECT ghost.x FROM ghost)",
        ] {
            assert!(
                matches!(validate_static(&s, &q(sql)), Err(ValidationError::Unresolved(_))),
                "{sql}"
            );
        }
    }

    #[test]
    fn rejects_engine_well_formedness_violations() {
        let s = schema();
        assert_eq!(
            validate_static(&s, &q("SELECT emp.name FROM emp WHERE COUNT(emp.id) > 1")),
            Err(ValidationError::AggregateInWhere)
        );
        assert_eq!(
            validate_static(&s, &q("SELECT *, COUNT(*) FROM emp")),
            Err(ValidationError::BareStarInGroupedSelect)
        );
        assert_eq!(
            validate_static(&s, &q("SELECT SUM(emp.name) FROM emp")),
            Err(ValidationError::NumericAggregateOnText("emp.name".into()))
        );
        assert_eq!(
            validate_static(&s, &q("SELECT emp.name FROM emp WHERE emp.name LIKE 7")),
            Err(ValidationError::NonTextLikePattern)
        );
    }

    #[test]
    fn rejects_statically_dead_type_mismatches() {
        let s = schema();
        assert!(matches!(
            validate_static(&s, &q("SELECT emp.id FROM emp WHERE emp.name > 5")),
            Err(ValidationError::TypeMismatch(_))
        ));
        assert!(matches!(
            validate_static(&s, &q("SELECT emp.id FROM emp WHERE emp.salary = 'x'")),
            Err(ValidationError::TypeMismatch(_))
        ));
        // Masked literals are unknown, not mismatched — instantiation
        // may still fill them with a compatible value.
        let mut masked = q("SELECT emp.id FROM emp WHERE emp.salary = 'x'");
        masked.where_.as_mut().unwrap().preds[0].rhs = Operand::Lit(Literal::Masked);
        assert_eq!(validate_static(&s, &masked), Ok(()));
    }

    #[test]
    fn validation_agrees_with_the_engine_on_accepted_queries() {
        // Soundness spot-check: everything the validator accepts here
        // must execute (the converse — rejected queries erroring — is
        // pinned by the rejection tests above).
        let d = db();
        for sql in [
            "SELECT emp.name FROM emp WHERE emp.salary > 15",
            "SELECT dept.title, COUNT(*) FROM emp JOIN dept ON emp.id = dept.id GROUP BY dept.title",
            "SELECT emp.name FROM emp WHERE emp.id IN (SELECT dept.id FROM dept)",
        ] {
            let query = q(sql);
            assert_eq!(validate_static(&d.schema, &query), Ok(()), "{sql}");
            assert!(execute(&d, &query).is_ok(), "{sql}");
        }
    }

    #[test]
    fn sample_database_takes_a_prefix_and_is_deterministic() {
        let d = db();
        let s1 = sample_database(&d, 2);
        let s2 = sample_database(&d, 2);
        assert_eq!(s1.tables["emp"].rows, d.tables["emp"].rows[..2].to_vec());
        assert_eq!(s1.tables["emp"].rows, s2.tables["emp"].rows);
        assert_eq!(s1.tables["dept"].rows.len(), 1);
        let all = sample_database(&d, 100);
        assert_eq!(all.tables["emp"].rows, d.tables["emp"].rows);
    }

    #[test]
    fn estimated_steps_multiplies_from_and_sums_subqueries() {
        let d = db();
        assert_eq!(estimated_steps(&d, &q("SELECT emp.id FROM emp")), 3);
        assert_eq!(estimated_steps(&d, &q("SELECT emp.id FROM emp JOIN dept ON emp.id = dept.id")), 3);
        assert_eq!(
            estimated_steps(
                &d,
                &q("SELECT emp.id FROM emp WHERE emp.id IN (SELECT dept.id FROM dept)")
            ),
            4
        );
    }

    #[test]
    fn exec_tiers_orders_ok_degenerate_error() {
        let d = db();
        let ok = q("SELECT emp.name FROM emp");
        let empty = q("SELECT emp.name FROM emp WHERE emp.salary > 1000");
        let err = q("SELECT ghost.x FROM ghost");
        let all_null = q("SELECT emp.name FROM emp WHERE emp.id = 3");
        let cands = [&ok, &empty, &err, &all_null];
        let tiers = exec_tiers(&d, &cands, 4, EXEC_STEP_BUDGET);
        assert_eq!(tiers, vec![0, 1, 2, 1]);
    }

    #[test]
    fn exec_tiers_skips_masked_budget_blown_and_beyond_k() {
        let d = db();
        let mut masked = q("SELECT emp.name FROM emp WHERE emp.id = 1");
        masked.where_.as_mut().unwrap().preds[0].rhs = Operand::Lit(Literal::Masked);
        let err = q("SELECT ghost.x FROM ghost");
        let cands = [&masked, &err, &err];
        // Masked is skipped (tier 0), the error is tier 2, the third
        // candidate is beyond k and untouched.
        assert_eq!(exec_tiers(&d, &cands, 2, EXEC_STEP_BUDGET), vec![0, 2, 0]);
        // A zero step budget skips everything.
        assert_eq!(exec_tiers(&d, &cands, 3, 0), vec![0, 0, 0]);
        // Empty candidate list never panics.
        assert_eq!(exec_tiers(&d, &[], 5, EXEC_STEP_BUDGET), Vec::<u8>::new());
    }

    #[test]
    fn empty_results_are_degenerate_only_as_the_lone_outlier() {
        let d = db();
        let ok = q("SELECT emp.name FROM emp");
        let empty = q("SELECT emp.name FROM emp WHERE emp.salary > 1000");
        // Every executed candidate empty: nothing to demote against.
        assert_eq!(exec_tiers(&d, &[&empty, &empty], 2, EXEC_STEP_BUDGET), vec![0, 0]);
        // Two empties among a non-empty sibling: still not outliers —
        // gold queries legitimately return empty sets in company.
        assert_eq!(
            exec_tiers(&d, &[&ok, &empty, &empty], 3, EXEC_STEP_BUDGET),
            vec![0, 0, 0]
        );
        // A lone empty against non-empty siblings is demoted.
        assert_eq!(
            exec_tiers(&d, &[&ok, &empty, &ok], 3, EXEC_STEP_BUDGET),
            vec![0, 1, 0]
        );
    }
}
