//! Per-stage error attribution (Table 9 of the paper).
//!
//! A failed translation is blamed on exactly one pipeline stage:
//!
//! - **data preparation miss** — the gold query was never generated into
//!   the candidate pool;
//! - **retrieval miss** — the gold is in the pool but the first-stage
//!   model did not put it in the top-k;
//! - **re-ranking miss** — the gold was retrieved but not ranked first.

use crate::prepare::PoolIndex;
use crate::system::{GarSystem, PreparedDb};
use gar_benchmarks::{Example, GeneratedDb};
use gar_sql::{exact_match, mask_values};

/// Per-stage failure counts over one evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErrorAnalysis {
    /// Examples evaluated.
    pub total: usize,
    /// Correct top-1 translations.
    pub correct: usize,
    /// Gold absent from the candidate pool.
    pub data_prep_miss: usize,
    /// Gold in pool, absent from retrieval top-k.
    pub retrieval_miss: usize,
    /// Gold retrieved, not ranked first.
    pub rerank_miss: usize,
}

impl ErrorAnalysis {
    /// Top-1 accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Merge another analysis into this one.
    pub fn merge(&mut self, other: &ErrorAnalysis) {
        self.total += other.total;
        self.correct += other.correct;
        self.data_prep_miss += other.data_prep_miss;
        self.retrieval_miss += other.retrieval_miss;
        self.rerank_miss += other.rerank_miss;
    }
}

/// Attribute every failure in the examples to a pipeline stage.
pub fn analyze(
    gar: &GarSystem,
    db: &GeneratedDb,
    prepared: &PreparedDb,
    examples: &[&Example],
) -> ErrorAnalysis {
    let mut out = ErrorAnalysis::default();
    // Pool check first (one fingerprint-hash index instead of an O(pool)
    // scan per example); everything that survives is translated in one
    // batch.
    let pool = PoolIndex::build(&prepared.entries);
    let mut pending: Vec<(&Example, Vec<usize>)> = Vec::with_capacity(examples.len());
    for ex in examples {
        out.total += 1;
        let gold = mask_values(&ex.sql);
        let gold_ids = pool.gold_ids(&prepared.entries, &gold);
        if gold_ids.is_empty() {
            out.data_prep_miss += 1;
        } else {
            pending.push((*ex, gold_ids));
        }
    }
    let nls: Vec<&str> = pending.iter().map(|(ex, _)| ex.nl.as_str()).collect();
    let translations = gar.translate_batch(db, prepared, &nls);
    for ((ex, gold_ids), tr) in pending.iter().zip(&translations) {
        let top_ok = tr
            .top1()
            .map(|t| exact_match(t, &ex.sql))
            .unwrap_or(false);
        if top_ok {
            out.correct += 1;
        } else if tr.retrieved.iter().any(|id| gold_ids.contains(id)) {
            out.rerank_miss += 1;
        } else {
            out.retrieval_miss += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_total() {
        let mut a = ErrorAnalysis {
            total: 10,
            correct: 6,
            data_prep_miss: 1,
            retrieval_miss: 1,
            rerank_miss: 2,
        };
        assert_eq!(
            a.correct + a.data_prep_miss + a.retrieval_miss + a.rerank_miss,
            a.total
        );
        assert!((a.accuracy() - 0.6).abs() < 1e-9);
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.total, 20);
        assert_eq!(a.correct, 12);
    }
}
