//! # gar-core — the GAR generate-and-rank NL2SQL pipeline
//!
//! This crate assembles the full system of the paper (Fan et al., ICDE
//! 2023) from the substrate crates:
//!
//! 1. **Data preparation** ([`prepare`]) — compositional generalization of
//!    the sample queries (`gar-generalize`) followed by dialect rendering
//!    (`gar-dialect`);
//! 2. **LTR training** ([`GarSystem::train`]) — clause-punishment-scored
//!    triples for the Siamese retrieval model and query-grouped listwise
//!    training for the re-ranker (`gar-ltr`);
//! 3. **Two-stage translation** ([`GarSystem::translate`]) — encode the NL
//!    query, retrieve the top-k dialect expressions from a vector index
//!    (`gar-vecindex`), apply value post-processing ([`postprocess`]), and
//!    re-rank to produce the final SQL;
//! 4. **Error attribution** ([`analysis`]) — Table 9's per-stage miss
//!    accounting;
//! 5. **Offline acceleration** — the preparation pipeline is staged
//!    (generalize → render → encode → index) with the parallel stages
//!    fanned out over [`par_map`] workers, and whole prepared pools are
//!    memoized in a content-addressed [`PrepareCache`].
//!
//! GAR-J is the same pipeline with `prepare.use_annotations = true`, which
//! routes the database's join annotations into the dialect builder
//! (Section IV).

#![warn(missing_docs)]

pub mod analysis;
pub mod artifact;
pub mod cache;
pub mod metrics;
pub mod mmap;
pub mod par;
pub mod postprocess;
pub mod prepare;
pub mod rescache;
pub mod system;
pub mod tenants;
pub mod validate;

pub use analysis::{analyze, ErrorAnalysis};
pub use artifact::{
    prepared_from_bytes, prepared_to_bytes, system_from_bytes, system_to_bytes, ArtifactError,
    ModelView, PreparedPool, PreparedView,
};
pub use cache::{PrepareCache, SampleProtocol, DEFAULT_CACHE_CAPACITY};
pub use metrics::StageTimings;
pub use mmap::ArtifactMap;
pub use par::{par_map, par_shard_mut, thread_split};
pub use postprocess::{extract_nl_values, filter_candidates, instantiate, NlValue};
pub use prepare::{
    eval_samples_from_gold, pool_covers, prepare, DialectEntry, PoolIndex, PrepareConfig,
};
pub use rescache::{ResCacheConfig, ResultCache};
pub use system::{
    CandidatePool, GarConfig, GarSystem, GarTrainReport, GateConfig, PreparedDb, RankedCandidate,
    Translation,
};
pub use tenants::{TenantRegistry, TenantSnapshot, WorkspaceState};
pub use validate::{exec_tiers, sample_database, validate_static, ValidationError};
