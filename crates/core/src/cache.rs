//! Content-addressed cache of prepared databases.
//!
//! The offline phase (generalize → render → encode → index) is a pure
//! function of (database schema + annotations, sample-query set, prepare
//! configuration, retrieval model). [`PrepareCache`] exploits that: each
//! [`PreparedDb`](crate::PreparedDb) is stored under a 64-bit FNV-1a key
//! over exactly those inputs, serialized through the existing
//! [`prepared_to_bytes`]/[`prepared_from_bytes`] artifact codec into one
//! `<key>.gar` file per pool. A warm experiment re-run with an unchanged
//! (db, samples, config, model) quadruple skips the whole offline phase
//! and decodes the artifact instead.
//!
//! Properties:
//!
//! - **Content-addressed** — the key covers every input that can change
//!   the prepared pool, *including* a hash of the serialized retrieval
//!   model (embeddings depend on the trained weights) and the sample
//!   protocol (explicit samples vs. the eval-gold derivation run different
//!   generalizer configurations on the same query list). Thread counts are
//!   deliberately excluded: parallel prepare is bit-identical to
//!   sequential, so `threads=1` and `threads=8` share a cache entry.
//! - **Crash-safe** — artifacts are written to a temp file and atomically
//!   renamed into place; readers never observe a half-written entry.
//! - **Self-healing** — a corrupt or truncated entry fails decoding, is
//!   deleted, and reported as a miss; the caller falls back to a cold
//!   prepare and re-stores a good artifact.
//! - **Size-capped** — after each store, entries are evicted
//!   oldest-modification-first until the directory is back under the
//!   configured byte budget.
//! - **Delta-aware** — each entry carries a `<key>.meta` sidecar recording
//!   its base identity (everything except the samples) and the ordered
//!   sample fingerprints. On an exact miss, the explicit-sample path looks
//!   for a cached pool with the same base and an overlapping sample set and
//!   patches it incrementally (retire + extend, O(Δ) encodes) instead of
//!   re-preparing the whole pool. Patched pools are *not* stored under the
//!   new exact key, so an exact hit always means "bit-identical to a cold
//!   prepare".
//!
//! Hits and misses are counted in the global registry as `prep.cache_hit`
//! and `prep.cache_miss`; delta patches additionally count
//! `prep.cache_delta`, and every store refreshes the `prep.cache_bytes`
//! occupancy gauge with the directory's post-eviction byte total.

use crate::artifact::{prepared_from_bytes, prepared_to_bytes};
use crate::prepare::PrepareConfig;
use crate::system::{GarSystem, PreparedDb};
use gar_benchmarks::GeneratedDb;
use gar_sql::{fingerprint_hash, normalize, Query};
use std::path::{Path, PathBuf};

/// Default cache budget: 256 MiB of prepared-pool artifacts.
pub const DEFAULT_CACHE_CAPACITY: u64 = 256 * 1024 * 1024;

/// How the sample set handed to the cache key was constructed. The same
/// query list produces *different* pools under the two protocols (the
/// eval-gold path runs a second generalizer pass and rules the gold out),
/// so the protocol is part of the cache identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleProtocol {
    /// The queries are the sample set, used directly (deployment path).
    Explicit,
    /// The queries are gold queries; samples are derived per Section V-A3.
    EvalGold,
}

impl SampleProtocol {
    fn tag(self) -> u8 {
        match self {
            SampleProtocol::Explicit => 0,
            SampleProtocol::EvalGold => 1,
        }
    }
}

/// Streaming FNV-1a 64 over byte chunks.
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn str(&mut self, s: &str) {
        self.bytes(&(s.len() as u64).to_le_bytes());
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// A directory of content-addressed [`PreparedDb`] artifacts.
#[derive(Debug, Clone)]
pub struct PrepareCache {
    dir: PathBuf,
    capacity: u64,
}

impl PrepareCache {
    /// Open (creating if needed) a cache directory with the
    /// [`DEFAULT_CACHE_CAPACITY`] byte budget.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::with_capacity(dir, DEFAULT_CACHE_CAPACITY)
    }

    /// Open (creating if needed) a cache directory with an explicit byte
    /// budget. A `capacity` of 0 disables eviction (unbounded).
    pub fn with_capacity(dir: impl Into<PathBuf>, capacity: u64) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(PrepareCache { dir, capacity })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sample-independent half of the cache identity: database schema
    /// (+ annotations when used), prepare configuration, quantization
    /// switch, retrieval model, and sample protocol. Two cache entries with
    /// the same base key differ only in their sample sets, which makes them
    /// candidates for delta patching (see [`PrepareCache::find_delta_base`]).
    pub fn base_key(gar: &GarSystem, db: &GeneratedDb, protocol: SampleProtocol) -> u64 {
        let mut h = Fnv64::new();
        // v3: stored artifacts moved to the zero-copy page-aligned layout
        // (magic GARZ); the tag bump keeps v2-keyed entries from aliasing.
        // (v2 had added the quantized-index flag byte and moved the model
        // hash ahead of the samples.)
        h.bytes(b"gar-prep-cache-v3");
        h.bytes(&[protocol.tag()]);
        hash_schema(&mut h, db);
        let cfg = &gar.config.prepare;
        hash_config(&mut h, cfg);
        // The quantization switch changes the stored index bytes;
        // `rescore_factor` deliberately does not (it is a search-time
        // over-retrieval knob, not part of the prepared pool).
        h.bytes(&[u8::from(gar.config.quantize)]);
        if cfg.use_annotations {
            hash_annotations(&mut h, db);
        }
        // The embeddings depend on the trained retrieval weights; hash the
        // serialized model so a retrain can never serve stale vectors.
        let mut mh = Fnv64::new();
        mh.bytes(&gar.retrieval.to_bytes());
        h.u64(mh.0);
        h.0
    }

    /// Compute the content key for preparing `db` from `queries` under
    /// `protocol` with this system's prepare configuration and retrieval
    /// model. Query fingerprints are hashed *in order* (sample order feeds
    /// the generalizer's seeded walk) and are value-insensitive, matching
    /// what the pool actually depends on.
    pub fn key(
        gar: &GarSystem,
        db: &GeneratedDb,
        queries: &[Query],
        protocol: SampleProtocol,
    ) -> u64 {
        let mut h = Fnv64::new();
        h.u64(Self::base_key(gar, db, protocol));
        h.u64(queries.len() as u64);
        for q in queries {
            h.u64(fingerprint_hash(&normalize(q)));
        }
        h.0
    }

    /// The value-insensitive per-sample fingerprints the cache identifies a
    /// sample set by — the same hashes [`PrepareCache::key`] folds in.
    pub fn sample_fingerprints(queries: &[Query]) -> Vec<u64> {
        queries
            .iter()
            .map(|q| fingerprint_hash(&normalize(q)))
            .collect()
    }

    /// Load the prepared db stored under `key`, if present and intact.
    /// `expect_db` guards against key-collision absurdities: an artifact
    /// for a different database is treated as corrupt. Corrupt entries are
    /// deleted so the next run re-stores them. A hit refreshes the entry's
    /// modification time, so [`PrepareCache::evict`]'s oldest-first order
    /// is true LRU rather than oldest-store-first. Records
    /// `prep.cache_hit` / `prep.cache_miss`.
    pub fn load(&self, key: u64, expect_db: &str) -> Option<PreparedDb> {
        let m = crate::metrics::metrics();
        let path = self.path(key);
        let Ok(bytes) = std::fs::read(&path) else {
            m.cache_miss.inc();
            return None;
        };
        match prepared_from_bytes(&bytes) {
            Ok(p) if p.db_name == expect_db => {
                m.cache_hit.inc();
                Self::touch(&path);
                Some(p)
            }
            _ => {
                // Truncated write, bit rot, or a foreign artifact: drop the
                // entry (and its sidecar) and fall back to a cold prepare.
                let _ = std::fs::remove_file(&path);
                let _ = std::fs::remove_file(self.meta_path(key));
                m.cache_miss.inc();
                None
            }
        }
    }

    /// Best-effort access-time refresh backing the LRU eviction order:
    /// hits bump the artifact's modification time to "now". Failure (e.g.
    /// a read-only cache directory) is ignored — eviction then degrades to
    /// store-order for that entry, which is the pre-LRU behaviour.
    fn touch(path: &Path) {
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(path) {
            let _ = f.set_modified(std::time::SystemTime::now());
        }
    }

    /// Store a prepared db under `key` (write-temp-then-rename, so
    /// concurrent readers never see a partial artifact), then evict
    /// least-recently-used-first down to the byte budget. Best-effort: I/O
    /// errors return `false` and leave the cache unchanged.
    pub fn store(&self, key: u64, prepared: &PreparedDb) -> bool {
        let bytes = prepared_to_bytes(prepared);
        let tmp = self
            .dir
            .join(format!(".tmp-{key:016x}-{}", std::process::id()));
        if std::fs::write(&tmp, &bytes).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        let ok = std::fs::rename(&tmp, self.path(key)).is_ok();
        if !ok {
            let _ = std::fs::remove_file(&tmp);
        }
        self.evict();
        ok
    }

    /// Write the delta sidecar for a stored entry: the base identity plus
    /// the ordered sample fingerprints the pool was prepared from. The
    /// sidecar is what lets a later run with an overlapping sample set find
    /// this entry and patch it instead of cold-preparing (see
    /// [`PrepareCache::find_delta_base`]). Best-effort, atomic like
    /// [`PrepareCache::store`].
    pub fn store_meta(&self, key: u64, base: u64, fingerprints: &[u64]) -> bool {
        let mut text = String::with_capacity(32 + fingerprints.len() * 17);
        text.push_str("gar-prep-meta-v2\n");
        text.push_str(&format!("{base:016x}\n"));
        for fp in fingerprints {
            text.push_str(&format!("{fp:016x}\n"));
        }
        let tmp = self
            .dir
            .join(format!(".tmpm-{key:016x}-{}", std::process::id()));
        if std::fs::write(&tmp, text.as_bytes()).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        let ok = std::fs::rename(&tmp, self.meta_path(key)).is_ok();
        if !ok {
            let _ = std::fs::remove_file(&tmp);
        }
        ok
    }

    /// Scan the sidecars for the cached entry with the same base identity
    /// whose sample set is closest to `fingerprints` (smallest symmetric
    /// difference, ties broken by lower key for determinism). Only entries
    /// whose patch is strictly cheaper than a cold prepare qualify: the
    /// symmetric difference must be smaller than the new sample count.
    /// Returns the winning entry's key and its stored fingerprints.
    pub fn find_delta_base(&self, base: u64, fingerprints: &[u64]) -> Option<(u64, Vec<u64>)> {
        use std::collections::HashSet;
        let want: HashSet<u64> = fingerprints.iter().copied().collect();
        let mut best: Option<(usize, u64, Vec<u64>)> = None;
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return None;
        };
        for e in rd.flatten() {
            let path = e.path();
            if path.extension().and_then(|x| x.to_str()) != Some("meta") {
                continue;
            }
            let Some((key, meta_base, fps)) = read_meta(&path) else {
                continue;
            };
            if meta_base != base || !self.path(key).exists() {
                continue;
            }
            let have: HashSet<u64> = fps.iter().copied().collect();
            let diff = want.symmetric_difference(&have).count();
            if diff >= fingerprints.len().max(1) {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bd, bk, _)) => diff < *bd || (diff == *bd && key < *bk),
            };
            if better {
                best = Some((diff, key, fps));
            }
        }
        best.map(|(_, key, fps)| (key, fps))
    }

    /// Number of committed entries currently in the cache directory.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// `true` when the cache directory holds no committed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.gar"))
    }

    fn meta_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.meta"))
    }

    fn entries(&self) -> Vec<(PathBuf, u64, std::time::SystemTime)> {
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        rd.flatten()
            .filter_map(|e| {
                let path = e.path();
                if path.extension().and_then(|x| x.to_str()) != Some("gar") {
                    return None;
                }
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                Some((path, meta.len(), mtime))
            })
            .collect()
    }

    fn evict(&self) {
        let mut entries = self.entries();
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if self.capacity == 0 || total <= self.capacity {
            crate::metrics::metrics().prep_cache_bytes.set(total);
            return;
        }
        entries.sort_by_key(|(_, _, mtime)| *mtime);
        for (path, len, _) in entries {
            if total <= self.capacity {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                // An orphan sidecar would advertise a base that no longer
                // decodes; drop it with the artifact.
                let _ = std::fs::remove_file(path.with_extension("meta"));
            }
        }
        crate::metrics::metrics().prep_cache_bytes.set(total);
    }
}

/// Parse a `<key>.meta` sidecar: returns (key, base, fingerprints), or
/// `None` for anything malformed (wrong tag, bad hex, foreign file name).
fn read_meta(path: &Path) -> Option<(u64, u64, Vec<u64>)> {
    let stem = path.file_stem()?.to_str()?;
    let key = u64::from_str_radix(stem, 16).ok()?;
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != "gar-prep-meta-v2" {
        return None;
    }
    let base = u64::from_str_radix(lines.next()?, 16).ok()?;
    let mut fps = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        fps.push(u64::from_str_radix(line, 16).ok()?);
    }
    Some((key, base, fps))
}

fn hash_schema(h: &mut Fnv64, db: &GeneratedDb) {
    let s = &db.schema;
    h.str(&s.name);
    h.u64(s.tables.len() as u64);
    for t in &s.tables {
        h.str(&t.name);
        h.str(&t.nl_name);
        h.u64(t.columns.len() as u64);
        for c in &t.columns {
            h.str(&c.name);
            h.str(&format!("{:?}", c.ty));
            h.str(&c.nl_name);
        }
        for k in &t.primary_key {
            h.str(k);
        }
    }
    h.u64(s.foreign_keys.len() as u64);
    for fk in &s.foreign_keys {
        h.str(&fk.from_table);
        h.str(&fk.from_column);
        h.str(&fk.to_table);
        h.str(&fk.to_column);
    }
}

fn hash_config(h: &mut Fnv64, cfg: &PrepareConfig) {
    h.u64(cfg.gen_size as u64);
    h.bytes(&[
        u8::from(cfg.use_dialects),
        u8::from(cfg.use_annotations),
        u8::from(cfg.rules.join_rule),
        u8::from(cfg.rules.syntactic_restriction),
        u8::from(cfg.rules.frequency_preservation),
        u8::from(cfg.rules.subquery_preservation),
    ]);
    h.u64(cfg.seed);
    // cfg.threads intentionally absent: it never changes the output.
}

fn hash_annotations(h: &mut Fnv64, db: &GeneratedDb) {
    // AnnotationSet iterates in hash-map order; sort for a stable digest.
    let mut rows: Vec<String> = db
        .annotations
        .iter()
        .map(|a| {
            format!(
                "{}|{}|{}={}|{}|{}",
                a.tables.0, a.tables.1, a.condition.0, a.condition.1, a.description, a.table_key
            )
        })
        .collect();
    rows.sort_unstable();
    h.u64(rows.len() as u64);
    for r in &rows {
        h.str(r);
    }
}

/// A unique scratch directory per test invocation (no wall-clock use:
/// pid + counter is enough to avoid collisions between test runs).
#[cfg(test)]
pub(crate) fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "gar-cache-test-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_keeps_directory_under_budget() {
        let dir = scratch_dir("evict");
        // 1 KiB budget; entries of ~400 bytes each force eviction.
        let cache = PrepareCache::with_capacity(&dir, 1024).unwrap();
        for i in 0..6u64 {
            let path = cache.path(i);
            std::fs::write(&path, vec![0u8; 400]).unwrap();
            // Spread mtimes so oldest-first ordering is well-defined even
            // on filesystems with coarse timestamps.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        cache.evict();
        let total: u64 = cache.entries().iter().map(|(_, len, _)| len).sum();
        assert!(total <= 1024, "evict left {total} bytes");
        assert!(!cache.is_empty(), "evict removed everything");
        // Occupancy is mirrored into the gauge; another test's cache may
        // overwrite it later, but a nonzero directory never reports zero
        // at set time — pin that the handle is wired at all.
        assert!(
            gar_obs::global().snapshot().gauge("prep.cache_bytes").is_some(),
            "prep.cache_bytes gauge registered"
        );
        // The newest entries survive.
        assert!(cache.path(5).exists());
        assert!(!cache.path(0).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_hits_refresh_lru_order() {
        let dir = scratch_dir("lru");
        // Budget fits two page-aligned empty-pool artifacts (4 KiB each).
        let cache = PrepareCache::with_capacity(&dir, 9 * 1024).unwrap();
        let pool = |name: &str| PreparedDb {
            db_name: name.to_string(),
            entries: Vec::new(),
            embeds: Vec::new(),
            index: gar_vecindex::FlatIndex::new(4),
        };
        assert!(cache.store(1, &pool("a")));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(cache.store(2, &pool("b")));
        std::thread::sleep(std::time::Duration::from_millis(20));
        // A hit on the oldest entry refreshes it past key 2.
        assert!(cache.load(1, "a").is_some());
        std::thread::sleep(std::time::Duration::from_millis(20));
        // A third entry busts the budget; the LRU victim must now be 2
        // (stored later than 1, but not accessed since).
        assert!(cache.store(3, &pool("c")));
        assert!(cache.path(1).exists(), "recently-hit entry was evicted");
        assert!(!cache.path(2).exists(), "LRU victim survived eviction");
        assert!(cache.path(3).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_of_missing_key_is_a_miss() {
        let dir = scratch_dir("miss");
        let cache = PrepareCache::new(&dir).unwrap();
        assert!(cache.load(0xdead_beef, "any").is_none());
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_disables_eviction() {
        let dir = scratch_dir("nocap");
        let cache = PrepareCache::with_capacity(&dir, 0).unwrap();
        for i in 0..4u64 {
            std::fs::write(cache.path(i), vec![0u8; 512]).unwrap();
        }
        cache.evict();
        assert_eq!(cache.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
