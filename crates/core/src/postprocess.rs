//! Value post-processing (Section V-A3 of the paper).
//!
//! GAR masks literal values during generalization, so the ranked candidates
//! carry placeholders. Post-processing does two things:
//!
//! 1. **Column-mention filtering** — when a value in the NL query is found
//!    in some database column, candidates whose SQL does not reference that
//!    column are dropped from the result set;
//! 2. **Value instantiation** — placeholders are filled with the values
//!    extracted from the NL query (numbers, and text values matched against
//!    the database content), enabling the execution-accuracy metric.

use gar_benchmarks::GeneratedDb;
use gar_engine::Datum;
use gar_ltr::tokenize;
use gar_sql::ast::*;
use gar_sql::visit::all_column_refs;
use std::collections::HashSet;

/// A value mentioned in the NL query, with the database columns known to
/// contain it (empty for plain numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct NlValue {
    /// The literal.
    pub literal: Literal,
    /// Columns whose data contains this value (qualified `table.column`).
    pub columns: Vec<(String, String)>,
}

/// Extract literal values from an NL question: numeric tokens, and word
/// uni/bigrams that occur verbatim in some text column of the database.
pub fn extract_nl_values(nl: &str, db: &GeneratedDb) -> Vec<NlValue> {
    let tokens = tokenize(nl);
    let mut out: Vec<NlValue> = Vec::new();
    let mut used: HashSet<String> = HashSet::new();

    // Numbers — scanned on the raw text so decimals ("275.29") survive
    // (word tokenization would split them at the dot).
    for raw in nl.split(|c: char| c.is_whitespace() || c == ',' || c == '?') {
        let t = raw.trim_matches(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'));
        if t.is_empty() || !t.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-') {
            continue;
        }
        if !used.insert(t.to_string()) {
            continue;
        }
        if t.contains('.') {
            if let Ok(v) = t.parse::<f64>() {
                out.push(NlValue {
                    literal: Literal::Float(v),
                    columns: columns_containing(db, &Datum::Float(v)),
                });
            }
        } else if let Ok(v) = t.parse::<i64>() {
            out.push(NlValue {
                literal: Literal::Int(v),
                columns: columns_containing(db, &Datum::Int(v)),
            });
        }
    }

    // Text values: check bigrams first (multi-word values), then unigrams.
    let mut spans: Vec<String> = tokens
        .windows(2)
        .map(|w| format!("{} {}", w[0], w[1]))
        .collect();
    spans.extend(tokens.iter().cloned());
    for span in spans {
        if used.contains(&span) {
            continue;
        }
        let datum = Datum::Text(span.clone());
        let cols = columns_containing(db, &datum);
        if !cols.is_empty() {
            used.insert(span.clone());
            out.push(NlValue {
                literal: Literal::Str(span),
                columns: cols,
            });
        }
    }
    out
}

fn columns_containing(db: &GeneratedDb, value: &Datum) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let key = value.canon_key();
    for t in &db.schema.tables {
        for c in &t.columns {
            // Numeric id columns carry no value semantics.
            if c.name.ends_with("_id") {
                continue;
            }
            let vals = db.column_values(&t.name, &c.name);
            if vals.iter().any(|v| v.canon_key() == key) {
                out.push((t.name.clone(), c.name.clone()));
            }
        }
    }
    out
}

/// The paper's candidate filter: for every *text* value mentioned in the NL
/// query, the candidate must reference one of the columns that contain the
/// value. Returns the surviving candidate indices — possibly empty when
/// every candidate misses a value column; the pipeline reports such
/// translations as empty results (`translate.empty_result`) rather than
/// ranking candidates that are known to contradict the question.
pub fn filter_candidates(
    candidates: &[usize],
    sqls: &[&Query],
    nl_values: &[NlValue],
) -> Vec<usize> {
    let constraints: Vec<&NlValue> = nl_values
        .iter()
        .filter(|v| matches!(v.literal, Literal::Str(_)) && !v.columns.is_empty())
        .collect();
    if constraints.is_empty() {
        return candidates.to_vec();
    }
    candidates
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let refs = all_column_refs(sqls[*i]);
            constraints.iter().all(|v| {
                v.columns.iter().any(|(t, c)| {
                    refs.iter()
                        .any(|r| r.table.as_deref() == Some(t.as_str()) && r.column == *c)
                })
            })
        })
        .map(|(_, id)| *id)
        .collect()
}

/// Fill a masked candidate's placeholders with NL-extracted values. Each
/// masked slot is matched by column: text slots take a value whose column
/// set contains the slot's column (else any text value); numeric slots take
/// numbers in order of appearance.
pub fn instantiate(q: &Query, db: &GeneratedDb, nl_values: &[NlValue]) -> Query {
    let mut numbers: Vec<Literal> = nl_values
        .iter()
        .filter(|v| matches!(v.literal, Literal::Int(_) | Literal::Float(_)))
        .map(|v| v.literal.clone())
        .collect();
    let mut texts: Vec<NlValue> = nl_values
        .iter()
        .filter(|v| matches!(v.literal, Literal::Str(_)))
        .cloned()
        .collect();

    let mut out = q.clone();
    fill(&mut out, db, &mut numbers, &mut texts);
    out
}

fn fill(q: &mut Query, db: &GeneratedDb, numbers: &mut Vec<Literal>, texts: &mut Vec<NlValue>) {
    let mut conds: Vec<&mut Condition> = Vec::new();
    if let Some(c) = &mut q.where_ {
        conds.push(c);
    }
    if let Some(c) = &mut q.having {
        conds.push(c);
    }
    for cond in conds {
        for p in &mut cond.preds {
            let col = p.lhs.col.clone();
            fill_operand(&mut p.rhs, &col, db, numbers, texts);
            if let Some(r2) = &mut p.rhs2 {
                fill_operand(r2, &col, db, numbers, texts);
            }
        }
    }
    if let Some((_, rhs)) = &mut q.compound {
        fill(rhs, db, numbers, texts);
    }
}

fn fill_operand(
    o: &mut Operand,
    col: &ColumnRef,
    db: &GeneratedDb,
    numbers: &mut Vec<Literal>,
    texts: &mut Vec<NlValue>,
) {
    match o {
        Operand::Lit(l) if l.is_masked() => {
            let col_ty = col
                .table
                .as_deref()
                .and_then(|t| db.schema.column(t, &col.column))
                .map(|c| c.ty);
            let is_text = matches!(col_ty, Some(gar_schema::ColType::Text));
            if is_text {
                // Prefer a text value known to live in this column.
                let pos = texts.iter().position(|v| {
                    v.columns.iter().any(|(t, c)| {
                        col.table.as_deref() == Some(t.as_str()) && col.column == *c
                    })
                });
                if let Some(i) = pos.or(if texts.is_empty() { None } else { Some(0) }) {
                    *l = texts.remove(i).literal;
                }
            } else if !numbers.is_empty() {
                *l = numbers.remove(0);
            }
        }
        Operand::Subquery(sq) => fill(sq, db, numbers, texts),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_benchmarks::{generate_db, vocab::THEMES};
    use gar_sql::{parse, to_sql};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> GeneratedDb {
        // The theme picks a random entity subset, so not every RNG stream
        // yields the student/city shape these tests exercise; scan seeds
        // until it appears (seed 4 qualifies on the reference stream).
        for seed in 4.. {
            let mut rng = StdRng::seed_from_u64(seed);
            let d = generate_db(&THEMES[0], 0, &mut rng);
            if matches!(
                d.column_values("student", "city").first(),
                Some(Datum::Text(_))
            ) {
                return d;
            }
        }
        unreachable!("some seed yields a student table with city values")
    }

    #[test]
    fn extracts_numbers_and_known_text() {
        let d = db();
        // "paris" is in the city text pool, so some student/teacher row has it.
        let vals = extract_nl_values("students older than 25 from paris", &d);
        let has_num = vals.iter().any(|v| v.literal == Literal::Int(25));
        assert!(has_num, "{vals:?}");
        let text = vals
            .iter()
            .find(|v| v.literal == Literal::Str("paris".into()));
        if let Some(t) = text {
            assert!(!t.columns.is_empty());
        }
    }

    #[test]
    fn instantiate_fills_numeric_slot() {
        let d = db();
        let q = parse("SELECT student.name FROM student WHERE student.age > ?").unwrap();
        let vals = extract_nl_values("show students older than 25", &d);
        let filled = instantiate(&q, &d, &vals);
        assert!(to_sql(&filled).contains("student.age > 25"));
    }

    #[test]
    fn instantiate_matches_text_by_column() {
        let d = db();
        let city_vals = d.column_values("student", "city");
        let Some(Datum::Text(city)) = city_vals.first().cloned() else {
            panic!("no city values");
        };
        let q = parse("SELECT student.name FROM student WHERE student.city = ?").unwrap();
        let nl = format!("students living in {city}");
        let vals = extract_nl_values(&nl, &d);
        let filled = instantiate(&q, &d, &vals);
        assert!(to_sql(&filled).contains(&format!("student.city = '{city}'")), "{}", to_sql(&filled));
    }

    #[test]
    fn filter_drops_candidates_missing_value_column() {
        let d = db();
        let city_vals = d.column_values("student", "city");
        let Some(Datum::Text(city)) = city_vals.first().cloned() else {
            panic!("no city values");
        };
        let with_city =
            parse("SELECT student.name FROM student WHERE student.city = ?").unwrap();
        let without =
            parse("SELECT student.name FROM student WHERE student.age > ?").unwrap();
        let vals = extract_nl_values(&format!("students from {city}"), &d);
        let kept = filter_candidates(&[0, 1], &[&with_city, &without], &vals);
        assert_eq!(kept, vec![0]);
    }

    #[test]
    fn filter_keeps_all_when_no_text_values() {
        let d = db();
        let q1 = parse("SELECT student.name FROM student").unwrap();
        let q2 = parse("SELECT student.age FROM student").unwrap();
        let vals = extract_nl_values("show all students older than 20", &d);
        let kept = filter_candidates(&[0, 1], &[&q1, &q2], &vals);
        assert_eq!(kept, vec![0, 1]);
    }

    #[test]
    fn filter_returns_empty_when_everything_dies() {
        let d = db();
        let city_vals = d.column_values("student", "city");
        let Some(Datum::Text(city)) = city_vals.first().cloned() else {
            panic!("no city values");
        };
        let q = parse("SELECT student.age FROM student").unwrap();
        let vals = extract_nl_values(&format!("students from {city}"), &d);
        let kept = filter_candidates(&[0], &[&q], &vals);
        assert!(kept.is_empty(), "contradicting candidate survived: {kept:?}");
    }
}
