//! Order-preserving bounded parallel map over owned work items.
//!
//! The offline-preparation pipeline fans out twice: across databases (one
//! prepare job per database) and within a database (chunk-parallel dialect
//! rendering). Both reuse this helper: items are split into at most
//! `threads` contiguous chunks of near-equal size and mapped on
//! [`std::thread::scope`] workers, with each result written back into the
//! slot of its input — so the output order is exactly the input order and
//! the result is identical to a sequential `map` whenever `f` is a pure
//! function of its item, regardless of the thread count.

/// Map `f` over `items` on up to `threads` scoped worker threads,
/// preserving input order. `threads <= 1` (or a single item) runs inline
/// with no thread spawned. Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest_out = slots.as_mut_slice();
        let mut rest_in = items.as_mut_slice();
        let base = n / threads;
        let extra = n % threads;
        for w in 0..threads {
            let size = base + usize::from(w < extra);
            let (out, tail_out) = rest_out.split_at_mut(size);
            let (input, tail_in) = rest_in.split_at_mut(size);
            rest_out = tail_out;
            rest_in = tail_in;
            scope.spawn(move || {
                for (slot, item) in out.iter_mut().zip(input.iter_mut()) {
                    *slot = Some(f(item.take().expect("par_map item taken twice")));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("par_map worker skipped a slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let want: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [0usize, 1, 2, 5, 64] {
            let got = par_map(items.clone(), threads, |x| x * x);
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(par_map(Vec::<usize>::new(), 4, |x: usize| x).is_empty());
        assert_eq!(par_map(vec![9usize], 8, |x| x + 1), vec![10]);
    }
}
