//! Re-export of the shared parallel substrate ([`gar_par`]).
//!
//! The helpers originally lived here; they were hoisted into the
//! dependency-free `gar-par` micro-crate so `gar-ltr`'s data-parallel
//! trainers can use the same order-preserving fan-out without a dependency
//! cycle through this crate. Existing `gar_core::par_map` /
//! `gar_core::par::par_map` callers keep working unchanged.

pub use gar_par::{par_map, par_shard_mut, partition, thread_split};
