//! Offline data preparation (Fig. 2, steps 1–2 of the paper).
//!
//! For a database with a set of sample SQL queries: generalize the samples
//! into a large component-similar query set (step 1), then render every
//! query into a dialect expression (step 2). The output is the candidate
//! pool the two-stage ranker searches at translation time.
//!
//! The phase is staged — generalize → render (→ encode → index, in
//! [`GarSystem`](crate::GarSystem)) — with each stage recorded into its own
//! `prep.*_us` histogram. Generalization is inherently sequential (a seeded
//! recomposition walk), but rendering is a pure per-query function, so it
//! fans out over [`par_map`](crate::par_map) workers when
//! [`PrepareConfig::threads`] > 1; the output is bit-identical to the
//! sequential order for any thread count.

use gar_benchmarks::GeneratedDb;
use gar_dialect::DialectBuilder;
use gar_generalize::{Generalizer, GeneralizerConfig, RuleSet};
use gar_obs::StageTimer;
use gar_schema::AnnotationSet;
use gar_sql::{exact_match, fingerprint_hash, mask_values, normalize, Query};
use std::collections::HashMap;

/// One candidate: a (masked) SQL query and its dialect expression.
#[derive(Debug, Clone)]
pub struct DialectEntry {
    /// The masked candidate query.
    pub sql: Query,
    /// Its dialect expression (or raw SQL text in the w/o-dialect ablation).
    pub dialect: String,
}

/// Data-preparation settings.
#[derive(Debug, Clone)]
pub struct PrepareConfig {
    /// Generalization target size (paper: 20,000 per database).
    pub gen_size: usize,
    /// Use the dialect builder; `false` = the Table 8 "w/o Dialect Builder"
    /// ablation (candidates are represented by raw SQL text).
    pub use_dialects: bool,
    /// Use GAR-J join annotations when the database provides them.
    pub use_annotations: bool,
    /// Recomposition rules (all on by default).
    pub rules: RuleSet,
    /// Generalizer seed.
    pub seed: u64,
    /// Worker threads for the render stage (1 = sequential). Not part of
    /// the prepared pool's identity: every thread count produces
    /// bit-identical output, so the [`PrepareCache`](crate::PrepareCache)
    /// key deliberately excludes it.
    pub threads: usize,
}

impl Default for PrepareConfig {
    fn default() -> Self {
        PrepareConfig {
            gen_size: 2_000,
            use_dialects: true,
            use_annotations: false,
            rules: RuleSet::default(),
            seed: 41,
            threads: 1,
        }
    }
}

/// Generalize sample queries and render dialect expressions.
pub fn prepare(db: &GeneratedDb, samples: &[Query], cfg: &PrepareConfig) -> Vec<DialectEntry> {
    let m = crate::metrics::metrics();
    let gen_cfg = GeneralizerConfig {
        target_size: cfg.gen_size,
        seed: cfg.seed,
        rules: cfg.rules,
        ..GeneralizerConfig::default()
    };
    let gen_timer = StageTimer::start(&m.prep_generalize);
    let generalized = Generalizer::new(&db.schema, gen_cfg).generalize(samples);
    gen_timer.stop();

    let empty = AnnotationSet::empty();
    let annotations = if cfg.use_annotations {
        &db.annotations
    } else {
        &empty
    };
    let builder = DialectBuilder::new(&db.schema, annotations);

    // Rendering is a pure per-query function over a shared builder, so the
    // chunked fan-out preserves entry order and bytes exactly.
    let render_timer = StageTimer::start(&m.prep_render);
    let entries: Vec<DialectEntry> = crate::par::par_map(generalized.queries, cfg.threads, |sql| {
        let dialect = if cfg.use_dialects {
            builder.render(&sql)
        } else {
            gar_sql::to_sql(&sql)
        };
        DialectEntry { sql, dialect }
    });
    render_timer.stop();
    m.pool_size.record(entries.len() as u64);
    entries
}

/// The evaluation-protocol sample construction (Section V-A3): generalize
/// the gold queries, then *rule out all the ground-truth queries* and use
/// the remainder as the sample set.
pub fn eval_samples_from_gold(
    db: &GeneratedDb,
    gold: &[Query],
    cfg: &PrepareConfig,
) -> Vec<Query> {
    let gen_cfg = GeneralizerConfig {
        // A smaller first-stage expansion is enough to find neighbours of
        // every gold query.
        target_size: (cfg.gen_size / 2).max(gold.len() * 4),
        seed: cfg.seed ^ 0xa5a5,
        rules: cfg.rules,
        ..GeneralizerConfig::default()
    };
    let generalized = Generalizer::new(&db.schema, gen_cfg).generalize(gold);
    // u64 fingerprint hashes, not fingerprint strings: a collision can
    // only drop one extra candidate from the sample set, never leak a gold
    // query into it (equal normalized forms always hash equal).
    let gold_fps: std::collections::HashSet<u64> = gold
        .iter()
        .map(|g| fingerprint_hash(&normalize(&mask_values(g))))
        .collect();
    generalized
        .queries
        .into_iter()
        .filter(|q| !gold_fps.contains(&fingerprint_hash(&normalize(q))))
        .collect()
}

/// `true` if the candidate pool contains the gold query (exact set match on
/// the masked forms) — the complement of the paper's *Data Preparation Miss*.
///
/// This is the one-shot form (O(pool) per call); callers probing many gold
/// queries against the same pool should build a [`PoolIndex`] once and use
/// [`PoolIndex::covers`].
pub fn pool_covers(entries: &[DialectEntry], gold: &Query) -> bool {
    let masked = mask_values(gold);
    entries.iter().any(|e| exact_match(&e.sql, &masked))
}

/// A fingerprint-hash inverted index over a candidate pool: one u64 hash
/// per entry, mapping to the entry positions that share it. Gold-query
/// lookups narrow by hash and then *verify* with [`exact_match`], so a
/// hash collision can never produce a false positive — the answers are
/// identical to a full linear scan at O(1) expected probes instead of
/// O(pool) per gold query.
#[derive(Debug, Clone, Default)]
pub struct PoolIndex {
    map: HashMap<u64, Vec<u32>>,
}

impl PoolIndex {
    /// Index a candidate pool by normalized-fingerprint hash.
    pub fn build(entries: &[DialectEntry]) -> Self {
        let mut map: HashMap<u64, Vec<u32>> = HashMap::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            map.entry(fingerprint_hash(&normalize(&e.sql)))
                .or_default()
                .push(i as u32);
        }
        PoolIndex { map }
    }

    /// All entry positions whose masked SQL exactly matches `masked`, in
    /// ascending order — the same positions a linear `exact_match` scan of
    /// `entries` would report. `entries` must be the pool this index was
    /// built from.
    pub fn gold_ids(&self, entries: &[DialectEntry], masked: &Query) -> Vec<usize> {
        let Some(bucket) = self.map.get(&fingerprint_hash(&normalize(masked))) else {
            return Vec::new();
        };
        bucket
            .iter()
            .map(|&i| i as usize)
            .filter(|&i| exact_match(&entries[i].sql, masked))
            .collect()
    }

    /// The first (lowest-position) entry exactly matching `masked`, if any.
    pub fn first_match(&self, entries: &[DialectEntry], masked: &Query) -> Option<usize> {
        self.map
            .get(&fingerprint_hash(&normalize(masked)))?
            .iter()
            .map(|&i| i as usize)
            .find(|&i| exact_match(&entries[i].sql, masked))
    }

    /// [`pool_covers`] through the index: `true` if the pool contains the
    /// gold query under exact set match of the masked forms.
    pub fn covers(&self, entries: &[DialectEntry], gold: &Query) -> bool {
        self.first_match(entries, &mask_values(gold)).is_some()
    }

    /// All entry positions whose normalized-fingerprint hash equals `hash`,
    /// in ascending order. Unlike [`PoolIndex::gold_ids`] there is no
    /// `exact_match` verification (callers such as the delta cache only
    /// hold hashes, not queries): a u64 collision can at worst retire one
    /// extra candidate from the pool, never resurrect one — the same
    /// tolerance [`eval_samples_from_gold`] documents.
    pub fn ids_for_hash(&self, hash: u64) -> Vec<usize> {
        self.map
            .get(&hash)
            .map(|b| b.iter().map(|&i| i as usize).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_benchmarks::{generate_db, vocab::THEMES};
    use gar_sql::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> GeneratedDb {
        let mut rng = StdRng::seed_from_u64(1);
        generate_db(&THEMES[0], 0, &mut rng)
    }

    fn samples(db: &GeneratedDb) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(2);
        gar_benchmarks::generate_queries(db, 30, &mut rng)
    }

    #[test]
    fn prepare_produces_dialects_for_all_queries() {
        let db = db();
        let ss = samples(&db);
        let entries = prepare(&db, &ss, &PrepareConfig {
            gen_size: 300,
            ..PrepareConfig::default()
        });
        assert!(entries.len() >= ss.len());
        for e in &entries {
            assert!(!e.dialect.is_empty());
            assert!(e.dialect.starts_with("Find"), "{}", e.dialect);
        }
    }

    #[test]
    fn parallel_render_is_bit_identical_to_sequential() {
        let db = db();
        let ss = samples(&db);
        let base = PrepareConfig {
            gen_size: 350,
            ..PrepareConfig::default()
        };
        let seq = prepare(&db, &ss, &base);
        for threads in [2usize, 3, 8] {
            let par = prepare(&db, &ss, &PrepareConfig { threads, ..base.clone() });
            assert_eq!(par.len(), seq.len(), "threads={threads}");
            for (a, b) in seq.iter().zip(&par) {
                assert!(exact_match(&a.sql, &b.sql));
                assert_eq!(gar_sql::to_sql(&a.sql), gar_sql::to_sql(&b.sql));
                assert_eq!(a.dialect, b.dialect);
            }
        }
    }

    #[test]
    fn without_dialects_entries_are_sql_text() {
        let db = db();
        let ss = samples(&db);
        let entries = prepare(&db, &ss, &PrepareConfig {
            gen_size: 100,
            use_dialects: false,
            ..PrepareConfig::default()
        });
        assert!(entries.iter().all(|e| e.dialect.starts_with("SELECT")));
    }

    #[test]
    fn eval_samples_exclude_gold() {
        let db = db();
        let gold = samples(&db);
        let cfg = PrepareConfig {
            gen_size: 400,
            ..PrepareConfig::default()
        };
        let ss = eval_samples_from_gold(&db, &gold, &cfg);
        assert!(!ss.is_empty());
        for g in &gold {
            let masked = mask_values(g);
            assert!(
                !ss.iter().any(|s| exact_match(s, &masked)),
                "gold leaked into samples"
            );
        }
    }

    #[test]
    fn two_stage_prep_recovers_most_gold() {
        // The paper's protocol: generalized-minus-gold samples, then the
        // normal data prep should regenerate most gold queries (Table 9's
        // data-preparation miss is small).
        let db = db();
        let gold = samples(&db);
        let cfg = PrepareConfig {
            gen_size: 1200,
            ..PrepareConfig::default()
        };
        let ss = eval_samples_from_gold(&db, &gold, &cfg);
        let entries = prepare(&db, &ss, &cfg);
        let pool = PoolIndex::build(&entries);
        let covered = gold.iter().filter(|g| pool.covers(&entries, g)).count();
        assert!(
            covered * 10 >= gold.len() * 6,
            "only {covered}/{} gold recovered",
            gold.len()
        );
    }

    #[test]
    fn pool_covers_is_value_insensitive() {
        let db = db();
        let q = parse("SELECT student.name FROM student WHERE student.age > 25").unwrap();
        let entries = vec![DialectEntry {
            sql: mask_values(&q),
            dialect: "d".into(),
        }];
        let gold = parse("SELECT student.name FROM student WHERE student.age > 99").unwrap();
        assert!(pool_covers(&entries, &gold));
        let pool = PoolIndex::build(&entries);
        assert!(pool.covers(&entries, &gold));
        let _ = db;
    }

    #[test]
    fn pool_index_agrees_with_linear_scan() {
        let db = db();
        let gold = samples(&db);
        let cfg = PrepareConfig {
            gen_size: 500,
            ..PrepareConfig::default()
        };
        let entries = prepare(&db, &gold, &cfg);
        let pool = PoolIndex::build(&entries);
        for g in &gold {
            let masked = mask_values(g);
            let want: Vec<usize> = entries
                .iter()
                .enumerate()
                .filter(|(_, e)| exact_match(&e.sql, &masked))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(pool.gold_ids(&entries, &masked), want);
            assert_eq!(pool.first_match(&entries, &masked), want.first().copied());
            assert_eq!(pool.covers(&entries, g), pool_covers(&entries, g));
        }
        // A query no pool could contain.
        let absent = parse(
            "SELECT student.name FROM student WHERE student.age > 1 \
             AND student.age < 2 AND student.name = 'zz_absent'",
        );
        if let Ok(q) = absent {
            let masked = mask_values(&q);
            assert_eq!(
                pool.gold_ids(&entries, &masked).is_empty(),
                !pool_covers(&entries, &q)
            );
        }
    }
}
