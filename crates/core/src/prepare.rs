//! Offline data preparation (Fig. 2, steps 1–2 of the paper).
//!
//! For a database with a set of sample SQL queries: generalize the samples
//! into a large component-similar query set (step 1), then render every
//! query into a dialect expression (step 2). The output is the candidate
//! pool the two-stage ranker searches at translation time.

use gar_benchmarks::GeneratedDb;
use gar_dialect::DialectBuilder;
use gar_generalize::{Generalizer, GeneralizerConfig, RuleSet};
use gar_schema::AnnotationSet;
use gar_sql::{exact_match, fingerprint, normalize, Query};

/// One candidate: a (masked) SQL query and its dialect expression.
#[derive(Debug, Clone)]
pub struct DialectEntry {
    /// The masked candidate query.
    pub sql: Query,
    /// Its dialect expression (or raw SQL text in the w/o-dialect ablation).
    pub dialect: String,
}

/// Data-preparation settings.
#[derive(Debug, Clone)]
pub struct PrepareConfig {
    /// Generalization target size (paper: 20,000 per database).
    pub gen_size: usize,
    /// Use the dialect builder; `false` = the Table 8 "w/o Dialect Builder"
    /// ablation (candidates are represented by raw SQL text).
    pub use_dialects: bool,
    /// Use GAR-J join annotations when the database provides them.
    pub use_annotations: bool,
    /// Recomposition rules (all on by default).
    pub rules: RuleSet,
    /// Generalizer seed.
    pub seed: u64,
}

impl Default for PrepareConfig {
    fn default() -> Self {
        PrepareConfig {
            gen_size: 2_000,
            use_dialects: true,
            use_annotations: false,
            rules: RuleSet::default(),
            seed: 41,
        }
    }
}

/// Generalize sample queries and render dialect expressions.
pub fn prepare(db: &GeneratedDb, samples: &[Query], cfg: &PrepareConfig) -> Vec<DialectEntry> {
    let gen_cfg = GeneralizerConfig {
        target_size: cfg.gen_size,
        seed: cfg.seed,
        rules: cfg.rules,
        ..GeneralizerConfig::default()
    };
    let generalized = Generalizer::new(&db.schema, gen_cfg).generalize(samples);

    let empty = AnnotationSet::empty();
    let annotations = if cfg.use_annotations {
        &db.annotations
    } else {
        &empty
    };
    let builder = DialectBuilder::new(&db.schema, annotations);

    let entries: Vec<DialectEntry> = generalized
        .queries
        .into_iter()
        .map(|sql| {
            let dialect = if cfg.use_dialects {
                builder.render(&sql)
            } else {
                gar_sql::to_sql(&sql)
            };
            DialectEntry { sql, dialect }
        })
        .collect();
    crate::metrics::metrics().pool_size.record(entries.len() as u64);
    entries
}

/// The evaluation-protocol sample construction (Section V-A3): generalize
/// the gold queries, then *rule out all the ground-truth queries* and use
/// the remainder as the sample set.
pub fn eval_samples_from_gold(
    db: &GeneratedDb,
    gold: &[Query],
    cfg: &PrepareConfig,
) -> Vec<Query> {
    let gen_cfg = GeneralizerConfig {
        // A smaller first-stage expansion is enough to find neighbours of
        // every gold query.
        target_size: (cfg.gen_size / 2).max(gold.len() * 4),
        seed: cfg.seed ^ 0xa5a5,
        rules: cfg.rules,
        ..GeneralizerConfig::default()
    };
    let generalized = Generalizer::new(&db.schema, gen_cfg).generalize(gold);
    let gold_fps: std::collections::HashSet<String> = gold
        .iter()
        .map(|g| fingerprint(&normalize(&gar_sql::mask_values(g))))
        .collect();
    generalized
        .queries
        .into_iter()
        .filter(|q| !gold_fps.contains(&fingerprint(&normalize(q))))
        .collect()
}

/// `true` if the candidate pool contains the gold query (exact set match on
/// the masked forms) — the complement of the paper's *Data Preparation Miss*.
pub fn pool_covers(entries: &[DialectEntry], gold: &Query) -> bool {
    let masked = gar_sql::mask_values(gold);
    entries.iter().any(|e| exact_match(&e.sql, &masked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_benchmarks::{generate_db, vocab::THEMES};
    use gar_sql::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> GeneratedDb {
        let mut rng = StdRng::seed_from_u64(1);
        generate_db(&THEMES[0], 0, &mut rng)
    }

    fn samples(db: &GeneratedDb) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(2);
        gar_benchmarks::generate_queries(db, 30, &mut rng)
    }

    #[test]
    fn prepare_produces_dialects_for_all_queries() {
        let db = db();
        let ss = samples(&db);
        let entries = prepare(&db, &ss, &PrepareConfig {
            gen_size: 300,
            ..PrepareConfig::default()
        });
        assert!(entries.len() >= ss.len());
        for e in &entries {
            assert!(!e.dialect.is_empty());
            assert!(e.dialect.starts_with("Find"), "{}", e.dialect);
        }
    }

    #[test]
    fn without_dialects_entries_are_sql_text() {
        let db = db();
        let ss = samples(&db);
        let entries = prepare(&db, &ss, &PrepareConfig {
            gen_size: 100,
            use_dialects: false,
            ..PrepareConfig::default()
        });
        assert!(entries.iter().all(|e| e.dialect.starts_with("SELECT")));
    }

    #[test]
    fn eval_samples_exclude_gold() {
        let db = db();
        let gold = samples(&db);
        let cfg = PrepareConfig {
            gen_size: 400,
            ..PrepareConfig::default()
        };
        let ss = eval_samples_from_gold(&db, &gold, &cfg);
        assert!(!ss.is_empty());
        for g in &gold {
            let masked = gar_sql::mask_values(g);
            assert!(
                !ss.iter().any(|s| exact_match(s, &masked)),
                "gold leaked into samples"
            );
        }
    }

    #[test]
    fn two_stage_prep_recovers_most_gold() {
        // The paper's protocol: generalized-minus-gold samples, then the
        // normal data prep should regenerate most gold queries (Table 9's
        // data-preparation miss is small).
        let db = db();
        let gold = samples(&db);
        let cfg = PrepareConfig {
            gen_size: 1200,
            ..PrepareConfig::default()
        };
        let ss = eval_samples_from_gold(&db, &gold, &cfg);
        let entries = prepare(&db, &ss, &cfg);
        let covered = gold.iter().filter(|g| pool_covers(&entries, g)).count();
        assert!(
            covered * 10 >= gold.len() * 6,
            "only {covered}/{} gold recovered",
            gold.len()
        );
    }

    #[test]
    fn pool_covers_is_value_insensitive() {
        let db = db();
        let q = parse("SELECT student.name FROM student WHERE student.age > 25").unwrap();
        let entries = vec![DialectEntry {
            sql: gar_sql::mask_values(&q),
            dialect: "d".into(),
        }];
        let gold = parse("SELECT student.name FROM student WHERE student.age > 99").unwrap();
        assert!(pool_covers(&entries, &gold));
        let _ = db;
    }
}
