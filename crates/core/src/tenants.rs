//! Multi-tenant workspace registry with atomic hot-swap (ROADMAP item 5).
//!
//! A production deployment serves many databases from one trained
//! [`GarSystem`]. This module owns that mapping: workspace id → an
//! immutable [`WorkspaceState`] (schema generation, database, prepared
//! pool, per-workspace gate), published through an epoch-stamped atomic
//! slot so an in-flight translation *never* observes a torn mix of two
//! generations — it resolves one [`TenantSnapshot`] up front and runs
//! entirely against it, while a concurrent swap only affects requests
//! that resolve afterwards.
//!
//! Publication is ArcSwap-style but dependency-free: the slot is a
//! `Mutex<Arc<WorkspaceState>>` taken only for the pointer clone/replace
//! (never while a pool is being prepared or a translation runs), plus a
//! monotone epoch counter paired with the pointer under the same lock.
//! Re-preparation after a schema or sample change happens *off* the
//! serving path — cold or via the content-addressed [`PrepareCache`] —
//! and the finished state is swapped in atomically; `tenant.swap` counts
//! publications and `tenant.reprepare_us` records rebuild wall time.

use crate::artifact::PreparedPool;
use crate::cache::PrepareCache;
use crate::metrics::metrics;
use crate::rescache::ResultCache;
use crate::system::{GarSystem, GateConfig, PreparedDb};
use gar_benchmarks::GeneratedDb;
use gar_sql::Query;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// The immutable, atomically-published state of one workspace:
/// everything a translation needs, resolved in a single load. States are
/// replaced whole (never mutated), which is what makes the swap safe for
/// readers mid-request.
#[derive(Debug, Clone)]
pub struct WorkspaceState {
    /// Schema generation this state was prepared from; bumped by
    /// [`TenantRegistry::reprepare`].
    pub schema_version: u64,
    /// The workspace database (schema for validation, rows for value
    /// filling and the execution gate).
    pub db: Arc<GeneratedDb>,
    /// The prepared candidate pool — owned, or a zero-copy mapped view.
    pub pool: Arc<PreparedPool>,
    /// Per-workspace gate switches applied to every request.
    pub gate: GateConfig,
}

impl WorkspaceState {
    /// A version-0 state over an owned pool with the given gate.
    pub fn new(db: Arc<GeneratedDb>, prepared: PreparedDb, gate: GateConfig) -> WorkspaceState {
        WorkspaceState {
            schema_version: 0,
            db,
            pool: Arc::new(PreparedPool::Owned(prepared)),
            gate,
        }
    }
}

/// One atomically-resolved view of a workspace: the published state plus
/// the epoch it was published at (monotone per workspace, so tests and
/// logs can tell exactly which generation served a request).
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// Publication epoch; bumps on every swap, starting at 1.
    pub epoch: u64,
    /// The state current at resolve time.
    pub state: Arc<WorkspaceState>,
}

/// The dependency-free ArcSwap: a mutex-guarded `Arc` slot plus an epoch
/// counter read/written under the same lock, so (epoch, pointer) pairs
/// are always consistent. The lock is held only for the pointer
/// clone/replace — O(1), never across a prepare or a translation.
#[derive(Debug)]
struct Swap {
    slot: Mutex<Arc<WorkspaceState>>,
    epoch: AtomicU64,
}

impl Swap {
    fn new(state: Arc<WorkspaceState>) -> Swap {
        Swap {
            slot: Mutex::new(state),
            epoch: AtomicU64::new(1),
        }
    }

    fn load(&self) -> TenantSnapshot {
        let guard = self.slot.lock().expect("tenant slot poisoned");
        TenantSnapshot {
            epoch: self.epoch.load(Ordering::Acquire),
            state: Arc::clone(&guard),
        }
    }

    fn store(&self, state: Arc<WorkspaceState>) -> u64 {
        let mut guard = self.slot.lock().expect("tenant slot poisoned");
        *guard = state;
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// Workspace id → atomically-swappable [`WorkspaceState`], sharing one
/// trained [`GarSystem`] and (optionally) one content-addressed
/// [`PrepareCache`] across all tenants.
///
/// The registry itself is `Sync`: resolves take a read lock on the
/// tenant table plus the per-tenant O(1) slot lock; publishes touch only
/// the one tenant they swap. See `gar-serve`'s `GarEngine` for the
/// request-path integration and `gar-testkit`'s tenants suite for the
/// seeded torn-read harness.
#[derive(Debug)]
pub struct TenantRegistry {
    system: Arc<GarSystem>,
    cache: Option<PrepareCache>,
    rescache: RwLock<Option<Arc<ResultCache>>>,
    tenants: RwLock<BTreeMap<String, Arc<Swap>>>,
}

impl TenantRegistry {
    /// An empty registry over a shared trained system, no cache.
    pub fn new(system: Arc<GarSystem>) -> TenantRegistry {
        TenantRegistry {
            system,
            cache: None,
            rescache: RwLock::new(None),
            tenants: RwLock::new(BTreeMap::new()),
        }
    }

    /// An empty registry whose re-prepares go through a
    /// content-addressed [`PrepareCache`] — identical samples + schema +
    /// model resolve to the same artifact, so re-registering a workspace
    /// (or hosting the same database twice) reuses the stored pool.
    pub fn with_cache(system: Arc<GarSystem>, cache: PrepareCache) -> TenantRegistry {
        TenantRegistry {
            system,
            cache: Some(cache),
            rescache: RwLock::new(None),
            tenants: RwLock::new(BTreeMap::new()),
        }
    }

    /// The shared trained system.
    pub fn system(&self) -> &Arc<GarSystem> {
        &self.system
    }

    /// Attach a shared [`ResultCache`]: the serving layer probes it
    /// before admission, and every [`TenantRegistry::publish`] purges the
    /// swapped workspace's entries. Epoch keying already makes stale
    /// entries unreachable after a swap — the purge only reclaims their
    /// bytes eagerly.
    pub fn attach_result_cache(&self, cache: Arc<ResultCache>) {
        *self.rescache.write().expect("rescache slot poisoned") = Some(cache);
    }

    /// The attached result cache, when one was configured.
    pub fn result_cache(&self) -> Option<Arc<ResultCache>> {
        self.rescache.read().expect("rescache slot poisoned").clone()
    }

    /// Publish `state` for `id`: atomically replaces the current state
    /// (or creates the tenant) and returns the new epoch. In-flight
    /// requests holding the previous snapshot are unaffected; the old
    /// pool is freed when the last of them drops it.
    pub fn publish(&self, id: &str, state: WorkspaceState) -> u64 {
        let state = Arc::new(state);
        let existing = {
            let tenants = self.tenants.read().expect("tenant table poisoned");
            tenants.get(id).cloned()
        };
        let epoch = match existing {
            Some(slot) => slot.store(state),
            None => {
                let mut tenants = self.tenants.write().expect("tenant table poisoned");
                // Racing registrations: whoever got the write lock second
                // swaps into the slot the first one inserted.
                match tenants.get(id) {
                    Some(slot) => slot.store(state),
                    None => {
                        tenants.insert(id.to_string(), Arc::new(Swap::new(state)));
                        1
                    }
                }
            }
        };
        metrics().tenant_swap.inc();
        // The new epoch already hides the old generation's cached results;
        // purging just hands their memory back without waiting for LRU.
        if let Some(rescache) = self.result_cache() {
            rescache.purge_workspace(id);
        }
        epoch
    }

    /// Prepare `db` from `samples` (through the cache when configured)
    /// and publish it under the database's schema name with `gate`.
    /// Returns the publication epoch. This is the cold-registration path;
    /// use [`TenantRegistry::reprepare`] for generation bumps.
    pub fn register(&self, db: Arc<GeneratedDb>, samples: &[Query], gate: GateConfig) -> u64 {
        let prepared = self.system.prepare_eval_db_cached(
            &db,
            samples,
            self.system.config.threads,
            self.cache.as_ref(),
        );
        let id = db.schema.name.clone();
        self.publish(&id, WorkspaceState::new(db, prepared, gate))
    }

    /// Resolve the current snapshot for `id`. The snapshot pins one
    /// consistent (db, pool, gate, epoch) for the caller's whole request.
    pub fn resolve(&self, id: &str) -> Option<TenantSnapshot> {
        let tenants = self.tenants.read().expect("tenant table poisoned");
        tenants.get(id).map(|slot| slot.load())
    }

    /// Swap only the gate switches of `id`, keeping the published db and
    /// pool. Returns the new epoch, or `None` for an unknown tenant.
    pub fn set_gate(&self, id: &str, gate: GateConfig) -> Option<u64> {
        let snap = self.resolve(id)?;
        let mut state = (*snap.state).clone();
        state.gate = gate;
        Some(self.publish(id, state))
    }

    /// Re-prepare `id` for a new schema/sample generation and atomically
    /// publish the result: the whole rebuild happens off to the side
    /// (cold, or served by the cache), readers keep translating against
    /// the old state, and the swap is the only synchronized step. Records
    /// the rebuild wall time in `tenant.reprepare_us`. Returns the new
    /// epoch, or `None` for an unknown tenant.
    pub fn reprepare(&self, id: &str, db: Arc<GeneratedDb>, samples: &[Query]) -> Option<u64> {
        let snap = self.resolve(id)?;
        let t0 = std::time::Instant::now();
        let prepared = self.system.prepare_eval_db_cached(
            &db,
            samples,
            self.system.config.threads,
            self.cache.as_ref(),
        );
        metrics()
            .tenant_reprepare
            .record(t0.elapsed().as_micros() as u64);
        let state = WorkspaceState {
            schema_version: snap.state.schema_version + 1,
            db,
            pool: Arc::new(PreparedPool::Owned(prepared)),
            gate: snap.state.gate,
        };
        Some(self.publish(id, state))
    }

    /// [`TenantRegistry::reprepare`] on a background thread — the serving
    /// path keeps answering from the old generation until the swap lands.
    /// Join the handle to observe the publication epoch.
    pub fn reprepare_background(
        self: &Arc<Self>,
        id: &str,
        db: Arc<GeneratedDb>,
        samples: Vec<Query>,
    ) -> std::thread::JoinHandle<Option<u64>> {
        let registry = Arc::clone(self);
        let id = id.to_string();
        std::thread::spawn(move || registry.reprepare(&id, db, &samples))
    }

    /// Registered workspace ids, sorted.
    pub fn workspace_ids(&self) -> Vec<String> {
        let tenants = self.tenants.read().expect("tenant table poisoned");
        tenants.keys().cloned().collect()
    }

    /// Number of registered workspaces.
    pub fn len(&self) -> usize {
        self.tenants.read().expect("tenant table poisoned").len()
    }

    /// `true` when no workspace is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::PrepareConfig;
    use crate::system::GarConfig;
    use gar_benchmarks::{spider_sim, SpiderSimConfig};
    use gar_ltr::{FeatureConfig, RerankConfig, RetrievalConfig};

    fn tiny_trained() -> (Arc<GarSystem>, gar_benchmarks::Benchmark) {
        let bench = spider_sim(SpiderSimConfig {
            train_dbs: 2,
            val_dbs: 1,
            queries_per_db: 12,
            seed: 47,
        });
        let config = GarConfig {
            prepare: PrepareConfig {
                gen_size: 120,
                ..PrepareConfig::default()
            },
            train_gen_size: 80,
            retrieval: RetrievalConfig {
                features: FeatureConfig {
                    dim: 512,
                    ..FeatureConfig::default()
                },
                hidden: 24,
                embed: 12,
                epochs: 2,
                ..RetrievalConfig::default()
            },
            rerank: RerankConfig {
                embed: 12,
                hidden: 16,
                epochs: 2,
                ..RerankConfig::default()
            },
            ..GarConfig::default()
        };
        let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, config);
        (Arc::new(gar), bench)
    }

    #[test]
    fn register_resolve_and_swap_bump_epochs() {
        let (gar, bench) = tiny_trained();
        let registry = TenantRegistry::new(Arc::clone(&gar));
        let db = Arc::new(bench.db(&bench.dev[0].db).expect("dev db").clone());
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        let gate = GateConfig::from(&gar.config);

        assert!(registry.resolve(&db.schema.name).is_none());
        let e1 = registry.register(Arc::clone(&db), &gold, gate);
        assert_eq!(e1, 1);
        let snap = registry.resolve(&db.schema.name).expect("registered");
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.state.schema_version, 0);
        assert!(!snap.state.pool.is_empty());

        // A re-prepare bumps both the epoch and the schema generation,
        // and the old snapshot stays fully usable.
        let e2 = registry
            .reprepare(&db.schema.name, Arc::clone(&db), &gold)
            .expect("known tenant");
        assert_eq!(e2, 2);
        let snap2 = registry.resolve(&db.schema.name).expect("still there");
        assert_eq!(snap2.state.schema_version, 1);
        let nl = &bench.dev[0].nl;
        let a = gar.translate(&snap.state.db, &snap.state.pool, nl);
        let b = gar.translate(&snap2.state.db, &snap2.state.pool, nl);
        assert_eq!(
            a.ranked.iter().map(|c| c.entry).collect::<Vec<_>>(),
            b.ranked.iter().map(|c| c.entry).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn set_gate_republishes_without_repreparing() {
        let (gar, bench) = tiny_trained();
        let registry = TenantRegistry::new(Arc::clone(&gar));
        let db = Arc::new(bench.db(&bench.dev[0].db).expect("dev db").clone());
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        registry.register(Arc::clone(&db), &gold, GateConfig::from(&gar.config));
        let before = registry.resolve(&db.schema.name).unwrap();

        let gate = GateConfig {
            validate: true,
            exec_rerank_k: 0,
            exec_row_budget: 64,
        };
        let epoch = registry.set_gate(&db.schema.name, gate).expect("known");
        assert_eq!(epoch, 2);
        let after = registry.resolve(&db.schema.name).unwrap();
        assert_eq!(after.state.gate, gate);
        // Same pool object — only the gate swapped.
        assert!(Arc::ptr_eq(&before.state.pool, &after.state.pool));
        assert!(registry.set_gate("no-such-tenant", gate).is_none());
    }

    #[test]
    fn cached_registry_reuses_prepared_artifacts() {
        let (gar, bench) = tiny_trained();
        let dir = crate::cache::scratch_dir("tenants");
        let cache = PrepareCache::new(&dir).unwrap();
        let registry = TenantRegistry::with_cache(Arc::clone(&gar), cache);
        let db = Arc::new(bench.db(&bench.dev[0].db).expect("dev db").clone());
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        registry.register(Arc::clone(&db), &gold, GateConfig::from(&gar.config));
        let cold = registry.resolve(&db.schema.name).unwrap();
        // The same generation re-registers through the cache and serves a
        // pool with identical contents.
        registry.register(Arc::clone(&db), &gold, GateConfig::from(&gar.config));
        let warm = registry.resolve(&db.schema.name).unwrap();
        assert_eq!(warm.epoch, 2);
        assert_eq!(cold.state.pool.len(), warm.state.pool.len());
        let nl = &bench.dev[0].nl;
        let a = gar.translate(&cold.state.db, &cold.state.pool, nl);
        let b = gar.translate(&warm.state.db, &warm.state.pool, nl);
        assert_eq!(
            a.ranked.iter().map(|c| c.entry).collect::<Vec<_>>(),
            b.ranked.iter().map(|c| c.entry).collect::<Vec<_>>(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_reprepare_swaps_atomically() {
        let (gar, bench) = tiny_trained();
        let registry = Arc::new(TenantRegistry::new(Arc::clone(&gar)));
        let db = Arc::new(bench.db(&bench.dev[0].db).expect("dev db").clone());
        let gold: Vec<Query> = bench.dev.iter().map(|e| e.sql.clone()).collect();
        registry.register(Arc::clone(&db), &gold, GateConfig::from(&gar.config));
        let handle =
            registry.reprepare_background(&db.schema.name, Arc::clone(&db), gold.clone());
        // Serving continues while the rebuild runs.
        let snap = registry.resolve(&db.schema.name).unwrap();
        let _ = gar.translate(&snap.state.db, &snap.state.pool, &bench.dev[0].nl);
        let epoch = handle.join().expect("reprepare thread").expect("known");
        assert!(epoch >= 2);
        assert_eq!(
            registry.resolve(&db.schema.name).unwrap().state.schema_version,
            1
        );
    }
}
