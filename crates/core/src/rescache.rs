//! Epoch-aware sharded result cache for the serving hot path.
//!
//! GAR translation is fully deterministic for a fixed prepared pool and
//! gate: the same (workspace generation, NL question, search knobs) always
//! yields the same bit-exact [`Translation`]. Under the Zipf-skewed
//! traffic `bench_serve` models, that makes the translation pipeline a
//! pure function worth memoizing. This module is the memo table: a
//! lock-striped, sharded LRU keyed by an FNV-1a fingerprint of
//!
//! * the workspace id,
//! * the workspace's **publication epoch** (from the
//!   [`TenantRegistry`](crate::TenantRegistry)),
//! * the per-workspace [`GateConfig`] switches,
//! * the system's quantize / rescore / top-k knobs,
//! * the whitespace-normalized NL question,
//!
//! storing `Arc<Translation>` values under a byte-accounted capacity
//! budget with per-shard LRU eviction.
//!
//! **Epoch keying is the invalidation story.** A hot-swap publishes a new
//! `WorkspaceState` and bumps the epoch; every later resolve computes keys
//! with the new epoch, so entries cached under the old generation become
//! unreachable — stale results cannot be served, with no locking between
//! the cache and the swap. [`ResultCache::purge_workspace`] exists purely
//! to reclaim those dead bytes eagerly (the registry calls it on publish);
//! correctness never depends on it.
//!
//! NL normalization (trim + collapse internal whitespace runs, see
//! [`normalize_nl`]) is exactly as aggressive as the pipeline allows:
//! both NL consumers — value extraction and the feature tokenizer — split
//! on whitespace, so two questions differing only in spacing translate
//! bit-identically. Case is *not* folded: numeric literal extraction
//! reads the raw text.
//!
//! Like `gar-par` and `gar-obs`, the module is dependency-free: shards
//! are plain `Mutex<HashMap>` stripes with a `BTreeMap` recency index
//! (O(log n) touch, no unsafe, no intrusive lists). Metrics:
//! `rescache.hit` / `rescache.miss` / `rescache.insert` /
//! `rescache.evict` counters and the `rescache.bytes` occupancy gauge.

use crate::metrics::metrics;
use crate::system::{GateConfig, Translation};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sizing knobs for a [`ResultCache`].
#[derive(Debug, Clone, Copy)]
pub struct ResCacheConfig {
    /// Lock stripes; rounded up to a power of two, minimum 1. More shards
    /// mean less contention and proportionally smaller per-shard budgets.
    pub shards: usize,
    /// Total byte budget across all shards (approximate, accounted per
    /// entry). `0` means unbounded.
    pub capacity_bytes: u64,
}

impl Default for ResCacheConfig {
    fn default() -> Self {
        ResCacheConfig {
            shards: 8,
            capacity_bytes: 64 << 20,
        }
    }
}

/// One cached translation plus everything needed to verify the hit and
/// account its footprint.
#[derive(Debug)]
struct Entry {
    workspace: Box<str>,
    epoch: u64,
    nl: Box<str>,
    value: Arc<Translation>,
    cost: u64,
    tick: u64,
}

/// One lock stripe: fingerprint → entry, plus a recency index mapping a
/// monotone touch tick back to the fingerprint it touched. Eviction pops
/// the smallest tick (least recently used); a touch re-keys the entry
/// under a fresh tick.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    recency: BTreeMap<u64, u64>,
    tick: u64,
    bytes: u64,
}

impl Shard {
    fn touch(&mut self, key: u64) {
        let entry = self.map.get_mut(&key).expect("touched key present");
        self.recency.remove(&entry.tick);
        self.tick += 1;
        entry.tick = self.tick;
        self.recency.insert(self.tick, key);
    }

    fn remove(&mut self, key: u64) -> Option<Entry> {
        let entry = self.map.remove(&key)?;
        self.recency.remove(&entry.tick);
        self.bytes -= entry.cost;
        Some(entry)
    }
}

/// The sharded, epoch-keyed translation memo table. See the module docs
/// for the keying and invalidation contract.
///
/// All methods take `&self`; the cache is `Sync` and meant to be shared
/// behind an `Arc` between the [`TenantRegistry`](crate::TenantRegistry)
/// (which purges on publish) and the serving layer (which probes before
/// admission).
#[derive(Debug)]
pub struct ResultCache {
    shards: Box<[Mutex<Shard>]>,
    mask: u64,
    per_shard_budget: u64,
    total_bytes: AtomicU64,
}

impl ResultCache {
    /// A cache sized by `config` (shards rounded up to a power of two).
    pub fn new(config: ResCacheConfig) -> ResultCache {
        let shards = config.shards.max(1).next_power_of_two();
        let per_shard_budget = if config.capacity_bytes == 0 {
            0
        } else {
            // Ceil-divide so the summed budget is never under the ask.
            config.capacity_bytes.div_ceil(shards as u64).max(1)
        };
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            mask: shards as u64 - 1,
            per_shard_budget,
            total_bytes: AtomicU64::new(0),
        }
    }

    /// A cache with the default sizing (8 shards, 64 MiB).
    pub fn with_defaults() -> ResultCache {
        ResultCache::new(ResCacheConfig::default())
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key & self.mask) as usize]
    }

    /// Adjust the global byte total by `delta` and mirror it into the
    /// `rescache.bytes` gauge.
    fn account(&self, delta: i64) {
        let new = if delta >= 0 {
            self.total_bytes.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
        } else {
            self.total_bytes.fetch_sub((-delta) as u64, Ordering::Relaxed) - (-delta) as u64
        };
        metrics().rescache_bytes.set(new);
    }

    /// Look up `key`, verifying the full (workspace, epoch, normalized NL)
    /// identity so a fingerprint collision degrades to a miss instead of a
    /// wrong answer. A hit refreshes the entry's recency and bumps
    /// `rescache.hit`; anything else bumps `rescache.miss`.
    pub fn get(
        &self,
        key: u64,
        workspace: &str,
        epoch: u64,
        normalized_nl: &str,
    ) -> Option<Arc<Translation>> {
        let mut shard = self.shard(key).lock().expect("rescache shard poisoned");
        let hit = match shard.map.get(&key) {
            Some(e) => {
                e.epoch == epoch && &*e.workspace == workspace && &*e.nl == normalized_nl
            }
            None => false,
        };
        if !hit {
            metrics().rescache_miss.inc();
            return None;
        }
        shard.touch(key);
        metrics().rescache_hit.inc();
        Some(Arc::clone(&shard.map[&key].value))
    }

    /// Insert `value` under `key`. Replaces any previous entry for the
    /// key, then evicts least-recently-used entries until the shard is
    /// back under its budget. A value whose accounted cost exceeds the
    /// whole per-shard budget is not admitted (it would evict the entire
    /// stripe and still not fit) — but it still supersedes the key: any
    /// resident entry for the key is dropped, so the cache never keeps
    /// serving a value older than the latest one offered. Bumps
    /// `rescache.insert` per admission and `rescache.evict` per capacity
    /// eviction.
    pub fn insert(
        &self,
        key: u64,
        workspace: &str,
        epoch: u64,
        normalized_nl: &str,
        value: Arc<Translation>,
    ) {
        let cost = entry_cost(workspace, normalized_nl, &value);
        if self.per_shard_budget != 0 && cost > self.per_shard_budget {
            let mut delta = 0i64;
            {
                let mut shard = self.shard(key).lock().expect("rescache shard poisoned");
                if let Some(old) = shard.remove(key) {
                    delta -= old.cost as i64;
                }
            }
            self.account(delta);
            return;
        }
        let mut delta = 0i64;
        let mut evicted = 0u64;
        {
            let mut shard = self.shard(key).lock().expect("rescache shard poisoned");
            if let Some(old) = shard.remove(key) {
                delta -= old.cost as i64;
            }
            shard.tick += 1;
            let tick = shard.tick;
            shard.recency.insert(tick, key);
            shard.map.insert(
                key,
                Entry {
                    workspace: workspace.into(),
                    epoch,
                    nl: normalized_nl.into(),
                    value,
                    cost,
                    tick,
                },
            );
            shard.bytes += cost;
            delta += cost as i64;
            while self.per_shard_budget != 0 && shard.bytes > self.per_shard_budget {
                let (_, lru) = shard.recency.pop_first().expect("non-empty over budget");
                let old = shard.map.remove(&lru).expect("recency maps to entry");
                shard.bytes -= old.cost;
                delta -= old.cost as i64;
                evicted += 1;
            }
        }
        self.account(delta);
        metrics().rescache_insert.inc();
        metrics().rescache_evict.add(evicted);
    }

    /// Drop every entry cached for `workspace`, across all epochs, and
    /// return how many were removed. Called by the registry on publish to
    /// reclaim the (already unreachable) previous generation's bytes.
    pub fn purge_workspace(&self, workspace: &str) -> usize {
        let mut removed = 0usize;
        let mut delta = 0i64;
        for stripe in self.shards.iter() {
            let mut shard = stripe.lock().expect("rescache shard poisoned");
            let dead: Vec<u64> = shard
                .map
                .iter()
                .filter(|(_, e)| &*e.workspace == workspace)
                .map(|(k, _)| *k)
                .collect();
            for key in dead {
                let old = shard.remove(key).expect("listed key present");
                delta -= old.cost as i64;
                removed += 1;
            }
        }
        if delta != 0 {
            self.account(delta);
        }
        removed
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut delta = 0i64;
        for stripe in self.shards.iter() {
            let mut shard = stripe.lock().expect("rescache shard poisoned");
            delta -= shard.bytes as i64;
            *shard = Shard::default();
        }
        if delta != 0 {
            self.account(delta);
        }
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("rescache shard poisoned").map.len())
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounted bytes currently resident (the value mirrored into the
    /// `rescache.bytes` gauge).
    pub fn bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Number of lock stripes (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard byte budget (`0` = unbounded).
    pub fn per_shard_budget(&self) -> u64 {
        self.per_shard_budget
    }
}

/// Approximate resident footprint of one entry: the bookkeeping struct,
/// both interned strings, and the translation's candidate list (each
/// candidate charged its struct size plus its rendered SQL length, the
/// dominant heap term).
fn entry_cost(workspace: &str, nl: &str, value: &Translation) -> u64 {
    let mut cost = (std::mem::size_of::<Entry>()
        + std::mem::size_of::<Translation>()
        + workspace.len()
        + nl.len()
        + value.retrieved.len() * std::mem::size_of::<usize>()) as u64;
    for c in &value.ranked {
        cost += std::mem::size_of_val(c) as u64 + gar_sql::to_sql(&c.sql).len() as u64;
    }
    cost
}

/// Trim and collapse internal whitespace runs to single spaces — the
/// strongest normalization the pipeline permits (both value extraction
/// and feature tokenization split on whitespace, so spacing never affects
/// the translation). Case is preserved.
pub fn normalize_nl(nl: &str) -> String {
    let mut out = String::with_capacity(nl.len());
    for token in nl.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(token);
    }
    out
}

/// FNV-1a (the [`PrepareCache`](crate::PrepareCache) idiom) over every
/// input that can change a translation's bits: workspace identity and
/// publication epoch, the gate switches, the system's quantize / rescore /
/// top-k knobs, and the normalized question. Two requests share a key
/// only when the pipeline is guaranteed to produce identical output.
pub fn fingerprint(
    workspace: &str,
    epoch: u64,
    gate: &GateConfig,
    quantize: bool,
    rescore_factor: usize,
    k: usize,
    normalized_nl: &str,
) -> u64 {
    let mut h = Fnv64::new();
    h.str("gar-rescache-v1");
    h.str(workspace);
    h.u64(epoch);
    h.u64(gate.validate as u64);
    h.u64(gate.exec_rerank_k as u64);
    h.u64(gate.exec_row_budget as u64);
    h.u64(quantize as u64);
    h.u64(rescore_factor as u64);
    h.u64(k as u64);
    h.str(normalized_nl);
    h.0
}

/// FNV-1a with length-prefixed strings so field boundaries cannot alias.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StageTimings;

    fn gate() -> GateConfig {
        GateConfig {
            validate: false,
            exec_rerank_k: 0,
            exec_row_budget: 0,
        }
    }

    /// A synthetic translation whose accounted cost grows with `weight`.
    fn synthetic(weight: usize) -> Arc<Translation> {
        Arc::new(Translation {
            ranked: Vec::new(),
            retrieved: (0..weight).collect(),
            timings: StageTimings::default(),
        })
    }

    fn key_for(ws: &str, epoch: u64, nl: &str) -> u64 {
        fingerprint(ws, epoch, &gate(), false, 4, 30, nl)
    }

    #[test]
    fn roundtrip_hit_and_identity_verified_miss() {
        let cache = ResultCache::new(ResCacheConfig {
            shards: 2,
            capacity_bytes: 0,
        });
        let key = key_for("ws", 1, "list all singers");
        cache.insert(key, "ws", 1, "list all singers", synthetic(3));
        let hit = cache.get(key, "ws", 1, "list all singers").expect("hit");
        assert_eq!(hit.retrieved, vec![0, 1, 2]);
        // Same key queried under a different identity (as a collision
        // would) degrades to a miss, never a wrong answer.
        assert!(cache.get(key, "ws", 2, "list all singers").is_none());
        assert!(cache.get(key, "other", 1, "list all singers").is_none());
        assert!(cache.get(key, "ws", 1, "list all stadiums").is_none());
    }

    #[test]
    fn epochs_key_separate_entries() {
        let cache = ResultCache::new(ResCacheConfig {
            shards: 1,
            capacity_bytes: 0,
        });
        let k1 = key_for("ws", 1, "q");
        let k2 = key_for("ws", 2, "q");
        assert_ne!(k1, k2, "epoch must be part of the key");
        cache.insert(k1, "ws", 1, "q", synthetic(1));
        cache.insert(k2, "ws", 2, "q", synthetic(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(k1, "ws", 1, "q").unwrap().retrieved.len(), 1);
        assert_eq!(cache.get(k2, "ws", 2, "q").unwrap().retrieved.len(), 2);
    }

    #[test]
    fn fingerprint_covers_every_knob() {
        let base = fingerprint("ws", 1, &gate(), false, 4, 30, "q");
        let mut g = gate();
        g.validate = true;
        assert_ne!(base, fingerprint("ws", 1, &g, false, 4, 30, "q"));
        let mut g = gate();
        g.exec_rerank_k = 2;
        assert_ne!(base, fingerprint("ws", 1, &g, false, 4, 30, "q"));
        let mut g = gate();
        g.exec_row_budget = 64;
        assert_ne!(base, fingerprint("ws", 1, &g, false, 4, 30, "q"));
        assert_ne!(base, fingerprint("ws", 2, &gate(), false, 4, 30, "q"));
        assert_ne!(base, fingerprint("ws", 1, &gate(), true, 4, 30, "q"));
        assert_ne!(base, fingerprint("ws", 1, &gate(), false, 8, 30, "q"));
        assert_ne!(base, fingerprint("ws", 1, &gate(), false, 4, 10, "q"));
        assert_ne!(base, fingerprint("ws2", 1, &gate(), false, 4, 30, "q"));
        assert_ne!(base, fingerprint("ws", 1, &gate(), false, 4, 30, "q2"));
        // Length-prefixing keeps adjacent string fields from aliasing.
        assert_ne!(
            fingerprint("ab", 1, &gate(), false, 4, 30, "c"),
            fingerprint("a", 1, &gate(), false, 4, 30, "bc"),
        );
    }

    #[test]
    fn normalization_trims_and_collapses_only() {
        assert_eq!(normalize_nl("  list  all\tsingers \n"), "list all singers");
        assert_eq!(normalize_nl("already normal"), "already normal");
        assert_eq!(normalize_nl(""), "");
        // Case survives: numeric/value extraction reads raw text.
        assert_eq!(normalize_nl("Show Rows Above 275.29"), "Show Rows Above 275.29");
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        let probe = entry_cost("ws", "q0", &synthetic(4));
        // Room for two probe-sized entries per shard, not three.
        let cache = ResultCache::new(ResCacheConfig {
            shards: 1,
            capacity_bytes: probe * 2 + probe / 2,
        });
        let (ka, kb, kc) = (key_for("ws", 1, "qa"), key_for("ws", 1, "qb"), key_for("ws", 1, "qc"));
        cache.insert(ka, "ws", 1, "qa", synthetic(4));
        cache.insert(kb, "ws", 1, "qb", synthetic(4));
        assert_eq!(cache.len(), 2);
        // Touch `qa` so `qb` is the LRU victim when `qc` arrives.
        assert!(cache.get(ka, "ws", 1, "qa").is_some());
        cache.insert(kc, "ws", 1, "qc", synthetic(4));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(ka, "ws", 1, "qa").is_some(), "recently used survives");
        assert!(cache.get(kb, "ws", 1, "qb").is_none(), "LRU evicted");
        assert!(cache.get(kc, "ws", 1, "qc").is_some());
        assert!(cache.bytes() <= probe * 2 + probe / 2);
    }

    #[test]
    fn byte_accounting_tracks_inserts_replacements_and_purges() {
        let cache = ResultCache::new(ResCacheConfig {
            shards: 4,
            capacity_bytes: 0,
        });
        assert_eq!(cache.bytes(), 0);
        let ka = key_for("a", 1, "q1");
        let kb = key_for("b", 1, "q2");
        cache.insert(ka, "a", 1, "q1", synthetic(2));
        cache.insert(kb, "b", 1, "q2", synthetic(8));
        let expect = entry_cost("a", "q1", &synthetic(2)) + entry_cost("b", "q2", &synthetic(8));
        assert_eq!(cache.bytes(), expect);
        // Replacement swaps the accounted cost, not adds to it.
        cache.insert(ka, "a", 1, "q1", synthetic(16));
        let expect = entry_cost("a", "q1", &synthetic(16)) + entry_cost("b", "q2", &synthetic(8));
        assert_eq!(cache.bytes(), expect);
        assert_eq!(cache.purge_workspace("a"), 1);
        assert_eq!(cache.bytes(), entry_cost("b", "q2", &synthetic(8)));
        assert_eq!(cache.purge_workspace("missing"), 0);
        cache.clear();
        assert_eq!(cache.bytes(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn oversized_values_are_not_admitted() {
        let cache = ResultCache::new(ResCacheConfig {
            shards: 1,
            capacity_bytes: 64,
        });
        let key = key_for("ws", 1, "q");
        cache.insert(key, "ws", 1, "q", synthetic(1024));
        assert!(cache.is_empty(), "an entry bigger than a whole shard is refused");
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn oversized_insert_still_supersedes_the_resident_entry() {
        let probe = entry_cost("ws", "q", &synthetic(4));
        let cache = ResultCache::new(ResCacheConfig {
            shards: 1,
            capacity_bytes: probe,
        });
        let key = key_for("ws", 1, "q");
        cache.insert(key, "ws", 1, "q", synthetic(4));
        assert!(cache.get(key, "ws", 1, "q").is_some());
        // The newer value doesn't fit, but the key must not keep serving
        // the value it just superseded.
        cache.insert(key, "ws", 1, "q", synthetic(4096));
        assert!(cache.get(key, "ws", 1, "q").is_none(), "stale value survived");
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(ResultCache::new(ResCacheConfig { shards: 0, capacity_bytes: 0 }).shard_count(), 1);
        assert_eq!(ResultCache::new(ResCacheConfig { shards: 3, capacity_bytes: 0 }).shard_count(), 4);
        assert_eq!(ResultCache::with_defaults().shard_count(), 8);
    }

    #[test]
    fn concurrent_stripes_stay_consistent() {
        let cache = Arc::new(ResultCache::new(ResCacheConfig {
            shards: 4,
            capacity_bytes: 1 << 16,
        }));
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200usize {
                        let nl = format!("q{}", (t * 31 + i) % 24);
                        let key = key_for("ws", 1, &nl);
                        if cache.get(key, "ws", 1, &nl).is_none() {
                            cache.insert(key, "ws", 1, &nl, synthetic(i % 7));
                        }
                    }
                });
            }
        });
        // After the race: the accounted total stays within budget and a
        // full purge returns the cache to exactly zero.
        assert!(cache.bytes() <= 1 << 16);
        assert!(cache.len() <= 24, "only 24 distinct questions were cached");
        let resident = cache.len();
        assert_eq!(cache.purge_workspace("ws"), resident);
        assert_eq!(cache.bytes(), 0);
        assert!(cache.is_empty());
    }
}
