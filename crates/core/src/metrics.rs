//! Pipeline observability: the typed per-stage timing report and the
//! interned [`gar_obs`] handles the translation path records into.
//!
//! Every stage of [`GarSystem::translate`](crate::GarSystem::translate) and
//! [`GarSystem::translate_batch`](crate::GarSystem::translate_batch) feeds
//! the same global registry ([`gar_obs::global`]), under these names:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `stage.encode_us` | histogram | NL query encoding (per query) |
//! | `stage.retrieve_us` | histogram | top-k vector search (per query) |
//! | `stage.filter_us` | histogram | value post-processing filter |
//! | `stage.rerank_us` | histogram | candidate scoring (either stage-3 path) |
//! | `stage.instantiate_us` | histogram | value instantiation + final sort |
//! | `stage.validate_us` | histogram | static candidate validation (gate, when enabled) |
//! | `stage.exec_rerank_us` | histogram | execution-guided demotion (gate, when enabled) |
//! | `prepare.pool_size` | histogram | candidate-pool size per prepared db |
//! | `prep.generalize_us` | histogram | offline generalization per prepared db |
//! | `prep.render_us` | histogram | offline dialect rendering per prepared db |
//! | `prep.encode_us` | histogram | offline pool embedding per prepared db |
//! | `prep.index_us` | histogram | offline index construction per prepared db |
//! | `prep.cache_hit` | counter | prepared dbs served from the [`PrepareCache`](crate::PrepareCache) |
//! | `prep.cache_miss` | counter | cache lookups that fell back to a cold prepare |
//! | `prep.cache_delta` | counter | prepared dbs served by delta-patching a cached base pool |
//! | `prep.cache_bytes` | gauge | on-disk bytes held by the [`PrepareCache`](crate::PrepareCache) |
//! | `index.scan_us` | histogram | int8 candidate scan of a quantized search (gar-vecindex) |
//! | `index.rescore_us` | histogram | exact f32 rescore pass of a quantized search (gar-vecindex) |
//! | `index.compactions` | counter | physical index compactions after tombstone build-up (gar-vecindex) |
//! | `train.retrieval_us` | histogram | whole retrieval-trainer wall time per `train_t` call |
//! | `train.rerank_us` | histogram | whole re-ranker-trainer wall time per `train_t` call |
//! | `train.grad_reduce_us` | histogram | fused block-gradient reduce + Adam step, per macro-batch |
//! | `train.retrieval.epoch_loss` | series | mean retrieval loss per epoch |
//! | `train.rerank.epoch_loss` | series | mean re-ranker loss per epoch |
//! | `candidates.retrieved` | counter | hits returned by stage 1 |
//! | `candidates.filtered` | counter | candidates dropped by the value filter |
//! | `candidates.demoted_unfilled` | counter | ranked candidates demoted for unfilled slots |
//! | `validate.rejected` | counter | candidates dropped by the static validator gate |
//! | `validate.all_rejected` | counter | translations where the gate rejected everything and fell back to the ungated ranking |
//! | `exec.demoted` | counter | candidates demoted by execution-guided re-ranking |
//! | `translate.total` | counter | translations finished |
//! | `translate.empty_result` | counter | translations with no ranked candidate |
//! | `translate.rerank_disabled` | counter | translations on the retrieval-only path |
//! | `artifact.mmap_bytes` | counter | bytes served through memory-mapped artifact views |
//! | `tenant.swap` | counter | atomic workspace publications through the [`TenantRegistry`](crate::TenantRegistry) |
//! | `tenant.reprepare_us` | histogram | wall time of a tenant re-prepare (schema/sample change) |
//! | `rescache.hit` | counter | translations served from the [`ResultCache`](crate::ResultCache) |
//! | `rescache.miss` | counter | result-cache lookups that fell through to the pipeline |
//! | `rescache.insert` | counter | translations admitted into the result cache |
//! | `rescache.evict` | counter | result-cache entries evicted for capacity |
//! | `rescache.bytes` | gauge | accounted bytes resident in the result cache |
//!
//! Batched translation records the *amortized per-query* encode and
//! retrieve latencies — one histogram sample per question, so single and
//! batched runs report through the identical set of series.

use gar_obs::{Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

/// Per-stage latencies of one translation, in microseconds.
///
/// Replaces the old anonymous `timing_us` tuple: the same struct is
/// produced by [`GarSystem::translate`](crate::GarSystem::translate) and
/// [`GarSystem::translate_batch`](crate::GarSystem::translate_batch) (the
/// batched path reports batch-amortized per-query encode/retrieve), so
/// downstream reporting never needs to know which path ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// NL query encoding.
    pub encode_us: u64,
    /// Top-k vector search.
    pub retrieve_us: u64,
    /// Value post-processing filter.
    pub filter_us: u64,
    /// Candidate scoring (re-ranker, or retrieval-score fallback).
    pub rerank_us: u64,
    /// Value instantiation and the final tiered sort.
    pub instantiate_us: u64,
    /// Static candidate validation (zero when the gate is disabled).
    pub validate_us: u64,
    /// Execution-guided demotion (zero when the gate is disabled).
    pub exec_rerank_us: u64,
}

impl StageTimings {
    /// End-to-end latency: the sum of all stages.
    pub fn total_us(&self) -> u64 {
        self.encode_us
            + self.retrieve_us
            + self.filter_us
            + self.rerank_us
            + self.instantiate_us
            + self.validate_us
            + self.exec_rerank_us
    }
}

/// Interned handles for every pipeline metric; resolved from the global
/// registry once and cached for the process lifetime. [`gar_obs::Registry::reset`]
/// zeroes metrics in place, so cached handles survive a reset.
pub(crate) struct PipelineMetrics {
    pub encode: Arc<Histogram>,
    pub retrieve: Arc<Histogram>,
    pub filter: Arc<Histogram>,
    pub rerank: Arc<Histogram>,
    pub instantiate: Arc<Histogram>,
    pub validate: Arc<Histogram>,
    pub exec_rerank: Arc<Histogram>,
    pub pool_size: Arc<Histogram>,
    pub prep_generalize: Arc<Histogram>,
    pub prep_render: Arc<Histogram>,
    pub prep_encode: Arc<Histogram>,
    pub prep_index: Arc<Histogram>,
    pub cache_hit: Arc<Counter>,
    pub cache_miss: Arc<Counter>,
    pub cache_delta: Arc<Counter>,
    pub retrieved: Arc<Counter>,
    pub filtered: Arc<Counter>,
    pub demoted_unfilled: Arc<Counter>,
    pub validate_rejected: Arc<Counter>,
    pub validate_all_rejected: Arc<Counter>,
    pub exec_demoted: Arc<Counter>,
    pub total: Arc<Counter>,
    pub empty_result: Arc<Counter>,
    pub rerank_disabled: Arc<Counter>,
    pub mmap_bytes: Arc<Counter>,
    pub tenant_swap: Arc<Counter>,
    pub tenant_reprepare: Arc<Histogram>,
    pub prep_cache_bytes: Arc<Gauge>,
    pub rescache_hit: Arc<Counter>,
    pub rescache_miss: Arc<Counter>,
    pub rescache_insert: Arc<Counter>,
    pub rescache_evict: Arc<Counter>,
    pub rescache_bytes: Arc<Gauge>,
}

/// The process-wide pipeline metric handles.
pub(crate) fn metrics() -> &'static PipelineMetrics {
    static METRICS: OnceLock<PipelineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = gar_obs::global();
        PipelineMetrics {
            encode: r.histogram("stage.encode_us"),
            retrieve: r.histogram("stage.retrieve_us"),
            filter: r.histogram("stage.filter_us"),
            rerank: r.histogram("stage.rerank_us"),
            instantiate: r.histogram("stage.instantiate_us"),
            validate: r.histogram("stage.validate_us"),
            exec_rerank: r.histogram("stage.exec_rerank_us"),
            pool_size: r.histogram("prepare.pool_size"),
            prep_generalize: r.histogram("prep.generalize_us"),
            prep_render: r.histogram("prep.render_us"),
            prep_encode: r.histogram("prep.encode_us"),
            prep_index: r.histogram("prep.index_us"),
            cache_hit: r.counter("prep.cache_hit"),
            cache_miss: r.counter("prep.cache_miss"),
            cache_delta: r.counter("prep.cache_delta"),
            retrieved: r.counter("candidates.retrieved"),
            filtered: r.counter("candidates.filtered"),
            demoted_unfilled: r.counter("candidates.demoted_unfilled"),
            validate_rejected: r.counter("validate.rejected"),
            validate_all_rejected: r.counter("validate.all_rejected"),
            exec_demoted: r.counter("exec.demoted"),
            total: r.counter("translate.total"),
            empty_result: r.counter("translate.empty_result"),
            rerank_disabled: r.counter("translate.rerank_disabled"),
            mmap_bytes: r.counter("artifact.mmap_bytes"),
            tenant_swap: r.counter("tenant.swap"),
            tenant_reprepare: r.histogram("tenant.reprepare_us"),
            prep_cache_bytes: r.gauge("prep.cache_bytes"),
            rescache_hit: r.counter("rescache.hit"),
            rescache_miss: r.counter("rescache.miss"),
            rescache_insert: r.counter("rescache.insert"),
            rescache_evict: r.counter("rescache.evict"),
            rescache_bytes: r.gauge("rescache.bytes"),
        }
    })
}
