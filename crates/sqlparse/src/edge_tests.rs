//! Edge-case tests for the SQL front-end: malformed `IN` lists, deep
//! subquery nesting, compound set-operation round-trips, and the exact
//! boundaries of the SPIDER difficulty buckets.

use crate::difficulty::{classify, Difficulty};
use crate::parser::parse;
use crate::printer::to_sql;
use crate::{exact_match, ParseError};

/// Parse, reprint, reparse: the printed form must be a fixpoint and the
/// reparse must be exact-set-match equal to the first parse.
fn roundtrip(sql: &str) -> String {
    let q = parse(sql).unwrap_or_else(|e| panic!("{e}: {sql}"));
    let printed = to_sql(&q);
    let back = parse(&printed).unwrap_or_else(|e| panic!("reparse {e}: {printed}"));
    assert_eq!(to_sql(&back), printed, "printer not a fixpoint for {sql}");
    assert!(exact_match(&q, &back), "reparse changed meaning of {sql}");
    printed
}

fn parse_err(sql: &str) -> ParseError {
    match parse(sql) {
        Ok(q) => panic!("expected parse error for {sql}, got {}", to_sql(&q)),
        Err(e) => e,
    }
}

// --- IN-list edge cases ---------------------------------------------------

#[test]
fn empty_in_list_is_a_graceful_error() {
    let e = parse_err("SELECT t.a FROM t WHERE t.a IN ()");
    let msg = e.to_string();
    assert!(
        msg.contains("subquery"),
        "error should point at the missing subquery: {msg}"
    );
}

#[test]
fn literal_in_lists_are_rejected_not_panicked() {
    // The SPIDER-subset grammar mandates a subquery after IN; literal
    // lists of every literal type must error, never panic.
    for sql in [
        "SELECT t.a FROM t WHERE t.a IN (1)",
        "SELECT t.a FROM t WHERE t.a IN (1, 2, 3)",
        "SELECT t.a FROM t WHERE t.a IN (1.5, 2.5)",
        "SELECT t.a FROM t WHERE t.a IN ('x', 'y')",
        "SELECT t.a FROM t WHERE t.a NOT IN (1, 2)",
    ] {
        parse_err(sql);
    }
}

#[test]
fn unclosed_in_subquery_is_a_graceful_error() {
    parse_err("SELECT t.a FROM t WHERE t.a IN (SELECT u.a FROM u");
    parse_err("SELECT t.a FROM t WHERE t.a IN (");
    parse_err("SELECT t.a FROM t WHERE t.a IN");
}

// --- deep nesting ---------------------------------------------------------

#[test]
fn depth_three_nested_subqueries_round_trip() {
    roundtrip(
        "SELECT t.a FROM t WHERE t.a IN (SELECT u.a FROM u WHERE u.b IN \
         (SELECT v.b FROM v WHERE v.c IN (SELECT w.c FROM w)))",
    );
}

#[test]
fn depth_four_nesting_with_mixed_predicates_round_trips() {
    let printed = roundtrip(
        "SELECT t.a FROM t WHERE t.x > 3 AND t.a IN (SELECT u.a FROM u WHERE \
         u.b NOT IN (SELECT v.b FROM v WHERE v.c IN (SELECT w.c FROM w \
         WHERE w.d IN (SELECT z.d FROM z))))",
    );
    // All four nesting levels survive the round-trip.
    assert_eq!(printed.matches("SELECT").count(), 5);
}

#[test]
fn deeply_nested_queries_classify_as_hard_or_worse() {
    let q = parse(
        "SELECT t.a FROM t WHERE t.a IN (SELECT u.a FROM u WHERE u.b IN \
         (SELECT v.b FROM v))",
    )
    .unwrap();
    assert!(q.has_nested_subquery());
    assert!(classify(&q) >= Difficulty::Hard);
}

// --- compound set operations ----------------------------------------------

#[test]
fn union_except_intersect_round_trip() {
    for op in ["UNION", "EXCEPT", "INTERSECT"] {
        let printed = roundtrip(&format!(
            "SELECT t.a FROM t WHERE t.b = 1 {op} SELECT u.a FROM u"
        ));
        assert!(printed.contains(op), "{op} lost in {printed}");
    }
}

#[test]
fn compound_arms_keep_their_own_clauses() {
    let printed = roundtrip(
        "SELECT t.a FROM t WHERE t.b = 1 UNION SELECT u.a FROM u WHERE u.c = 2",
    );
    let arms: Vec<&str> = printed.split(" UNION ").collect();
    assert_eq!(arms.len(), 2);
    assert!(arms[0].contains("WHERE") && arms[1].contains("WHERE"));
}

#[test]
fn compound_with_subquery_arm_round_trips() {
    roundtrip(
        "SELECT t.a FROM t WHERE t.a IN (SELECT u.a FROM u) \
         EXCEPT SELECT v.a FROM v",
    );
}

// --- difficulty bucket boundaries -----------------------------------------

fn diff(sql: &str) -> Difficulty {
    classify(&parse(sql).unwrap())
}

#[test]
fn difficulty_walks_every_bucket_as_components_accumulate() {
    // c1 counts WHERE/GROUP BY/ORDER BY/LIMIT/JOIN/OR/LIKE; one at a time:
    // Easy (c1=1) → Medium (c1=2) → Hard (c1=3) → ExtraHard (c1=4).
    assert_eq!(diff("SELECT t.a FROM t WHERE t.b = 1"), Difficulty::Easy);
    assert_eq!(
        diff("SELECT t.a FROM t WHERE t.b = 1 ORDER BY t.a"),
        Difficulty::Medium
    );
    assert_eq!(
        diff("SELECT t.a FROM t WHERE t.b = 1 ORDER BY t.a LIMIT 5"),
        Difficulty::Hard
    );
    assert_eq!(
        diff("SELECT t.a FROM t WHERE t.b = 1 OR t.c = 2 ORDER BY t.a LIMIT 5"),
        Difficulty::ExtraHard
    );
}

#[test]
fn others_alone_cannot_pass_medium_until_it_exceeds_two() {
    // others=1 (two select columns), c1=0 → Medium.
    assert_eq!(diff("SELECT t.a, t.b FROM t"), Difficulty::Medium);
    // others=4 (aggs>1, cols>1, preds>1, group-bys>1) with c1=2 → Hard.
    assert_eq!(
        diff(
            "SELECT MAX(t.a), MIN(t.b) FROM t WHERE t.c = 1 AND t.d = 2 \
             GROUP BY t.e, t.f"
        ),
        Difficulty::Hard
    );
}

#[test]
fn one_subquery_is_hard_two_are_extra_hard() {
    // c2=1 with an otherwise-easy query → Hard.
    assert_eq!(
        diff("SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u)"),
        Difficulty::Hard
    );
    // c2=2 → no Hard arm matches → ExtraHard.
    assert_eq!(
        diff(
            "SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u) \
             AND t.c IN (SELECT v.c FROM v)"
        ),
        Difficulty::ExtraHard
    );
}

#[test]
fn compound_counts_both_sides() {
    // Each arm alone is Easy (c1=1); compound adds c2=1 and sums c1 to 2
    // → the Hard arm (c1<=1) misses, the Medium arms need c2=0 → ExtraHard
    // territory is avoided only while c2 stays 0. With both arms carrying
    // WHERE the query lands in ExtraHard.
    assert_eq!(
        diff("SELECT t.a FROM t WHERE t.b = 1 UNION SELECT u.a FROM u WHERE u.c = 2"),
        Difficulty::ExtraHard
    );
    // A bare compound: c1=0, c2=1, others=0 → Hard via the c2<=1 arm.
    assert_eq!(
        diff("SELECT t.a FROM t UNION SELECT u.a FROM u"),
        Difficulty::Hard
    );
}
