//! SQL tokenizer for the GAR SQL subset.
//!
//! The lexer is deliberately small: it covers exactly the SQL dialect used by
//! the SPIDER-family benchmarks (single-statement `SELECT` queries with joins,
//! grouping, ordering, set operations and nested subqueries). Keywords are
//! case-insensitive; identifiers are normalized to lowercase at the token
//! level so that downstream comparison (exact set match) never has to worry
//! about case.

use std::fmt;

use crate::error::ParseError;

/// A single lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A (lower-cased) identifier: table, column or alias name.
    Ident(String),
    /// A SQL keyword, stored upper-cased (`SELECT`, `FROM`, ...).
    Keyword(Keyword),
    /// An integer literal.
    Int(i64),
    /// A floating point literal.
    Float(f64),
    /// A quoted string literal (quotes stripped).
    Str(String),
    /// `?` — masked literal placeholder produced by value masking.
    Placeholder,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;` — accepted and ignored at end of input.
    Semi,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Placeholder => write!(f, "?"),
            Token::Star => write!(f, "*"),
            Token::Dot => write!(f, "."),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Semi => write!(f, ";"),
        }
    }
}

/// The reserved words of the GAR SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Join,
    On,
    As,
    Where,
    And,
    Or,
    Not,
    In,
    Like,
    Between,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    Limit,
    Union,
    Intersect,
    Except,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Null,
    Is,
}

impl Keyword {
    /// Look a keyword up from an (already lower-cased) word.
    pub fn from_word(word: &str) -> Option<Keyword> {
        Some(match word {
            "select" => Keyword::Select,
            "distinct" => Keyword::Distinct,
            "from" => Keyword::From,
            "join" => Keyword::Join,
            "on" => Keyword::On,
            "as" => Keyword::As,
            "where" => Keyword::Where,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "not" => Keyword::Not,
            "in" => Keyword::In,
            "like" => Keyword::Like,
            "between" => Keyword::Between,
            "group" => Keyword::Group,
            "by" => Keyword::By,
            "having" => Keyword::Having,
            "order" => Keyword::Order,
            "asc" => Keyword::Asc,
            "desc" => Keyword::Desc,
            "limit" => Keyword::Limit,
            "union" => Keyword::Union,
            "intersect" => Keyword::Intersect,
            "except" => Keyword::Except,
            "count" => Keyword::Count,
            "sum" => Keyword::Sum,
            "avg" => Keyword::Avg,
            "min" => Keyword::Min,
            "max" => Keyword::Max,
            "null" => Keyword::Null,
            "is" => Keyword::Is,
            _ => return None,
        })
    }

    /// The canonical (upper-case) spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::Distinct => "DISTINCT",
            Keyword::From => "FROM",
            Keyword::Join => "JOIN",
            Keyword::On => "ON",
            Keyword::As => "AS",
            Keyword::Where => "WHERE",
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::In => "IN",
            Keyword::Like => "LIKE",
            Keyword::Between => "BETWEEN",
            Keyword::Group => "GROUP",
            Keyword::By => "BY",
            Keyword::Having => "HAVING",
            Keyword::Order => "ORDER",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
            Keyword::Limit => "LIMIT",
            Keyword::Union => "UNION",
            Keyword::Intersect => "INTERSECT",
            Keyword::Except => "EXCEPT",
            Keyword::Count => "COUNT",
            Keyword::Sum => "SUM",
            Keyword::Avg => "AVG",
            Keyword::Min => "MIN",
            Keyword::Max => "MAX",
            Keyword::Null => "NULL",
            Keyword::Is => "IS",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tokenize a SQL string into a flat token vector.
///
/// # Errors
///
/// Returns [`ParseError`] for unterminated string literals, malformed numbers
/// and any character outside the subset's alphabet.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::with_capacity(input.len() / 4);
    let bytes = input.as_bytes();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Placeholder);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(ParseError::lex(i, "expected '=' after '!'"));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = bytes[i];
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::lex(i, "unterminated string literal"));
                }
                // Safe: we only slice at char boundaries for ASCII quotes, and
                // the content between them is valid UTF-8 by construction.
                let s = &input[start..j];
                tokens.push(Token::Str(s.to_string()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                let mut saw_dot = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !saw_dot))
                {
                    if bytes[i] == b'.' {
                        // A dot not followed by a digit terminates the number
                        // (e.g. would be a syntax error anyway in this subset).
                        if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() {
                            break;
                        }
                        saw_dot = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if saw_dot {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| ParseError::lex(start, "malformed float literal"))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| ParseError::lex(start, "malformed integer literal"))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = input[start..i].to_ascii_lowercase();
                match Keyword::from_word(&word) {
                    Some(kw) => tokens.push(Token::Keyword(kw)),
                    None => tokens.push(Token::Ident(word)),
                }
            }
            '-' => {
                // Negative numeric literal (only valid where a literal is
                // expected; the parser validates context).
                if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    let start = i;
                    i += 1;
                    let mut saw_dot = false;
                    while i < bytes.len()
                        && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !saw_dot))
                    {
                        if bytes[i] == b'.' {
                            if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() {
                                break;
                            }
                            saw_dot = true;
                        }
                        i += 1;
                    }
                    let text = &input[start..i];
                    if saw_dot {
                        let v: f64 = text
                            .parse()
                            .map_err(|_| ParseError::lex(start, "malformed float literal"))?;
                        tokens.push(Token::Float(v));
                    } else {
                        let v: i64 = text
                            .parse()
                            .map_err(|_| ParseError::lex(start, "malformed integer literal"))?;
                        tokens.push(Token::Int(v));
                    }
                } else {
                    return Err(ParseError::lex(i, "unexpected '-'"));
                }
            }
            other => {
                return Err(ParseError::lex(i, format!("unexpected character {other:?}")));
            }
        }
    }

    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_select() {
        let toks = tokenize("SELECT name FROM employee").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("name".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("employee".into()),
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = tokenize("select SeLeCt SELECT").unwrap();
        assert!(toks
            .iter()
            .all(|t| *t == Token::Keyword(Keyword::Select)));
    }

    #[test]
    fn identifiers_are_lowercased() {
        let toks = tokenize("Employee_ID").unwrap();
        assert_eq!(toks, vec![Token::Ident("employee_id".into())]);
    }

    #[test]
    fn tokenizes_operators() {
        let toks = tokenize("= != <> < <= > >=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge
            ]
        );
    }

    #[test]
    fn tokenizes_string_literals_both_quotes() {
        let toks = tokenize("'John' \"red bull\"").unwrap();
        assert_eq!(
            toks,
            vec![Token::Str("John".into()), Token::Str("red bull".into())]
        );
    }

    #[test]
    fn string_content_preserves_case() {
        let toks = tokenize("'MixedCase'").unwrap();
        assert_eq!(toks, vec![Token::Str("MixedCase".into())]);
    }

    #[test]
    fn tokenizes_numbers() {
        let toks = tokenize("42 3.5 -7 -0.25").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Float(3.5),
                Token::Int(-7),
                Token::Float(-0.25)
            ]
        );
    }

    #[test]
    fn tokenizes_qualified_star_and_placeholder() {
        let toks = tokenize("t1.* ?").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t1".into()),
                Token::Dot,
                Token::Star,
                Token::Placeholder
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn rejects_garbage_character() {
        assert!(tokenize("SELECT @").is_err());
    }

    #[test]
    fn rejects_bare_bang() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn empty_input_is_empty_token_stream() {
        assert!(tokenize("   \n\t ").unwrap().is_empty());
    }
}
