//! The typed SQL AST — GAR's *parse tree* (Section III-A of the paper).
//!
//! Each [`Query`] is a tree whose sub-trees correspond to the seven component
//! types of Definition 1 (`select`, `from`, `where`, `group`, `order`, `join`,
//! `compound`). The generalizer in `gar-generalize` recomposes these sub-trees
//! across queries; the dialect builder in `gar-dialect` walks them in
//! pre-order to emit natural-language phrases.
//!
//! Table aliases are resolved at parse time: every [`ColumnRef`] carries the
//! *real* table name (or `None` for an unqualified column), so two
//! syntactically different but alias-equivalent queries share one AST.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal value appearing in a predicate or `LIMIT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// An integer constant.
    Int(i64),
    /// A floating point constant.
    Float(f64),
    /// A string constant.
    Str(String),
    /// A masked placeholder (`?`) produced by
    /// [`mask_values`](crate::mask::mask_values).
    Masked,
}

impl Literal {
    /// `true` if this literal is the masked placeholder.
    pub fn is_masked(&self) -> bool {
        matches!(self, Literal::Masked)
    }
}

impl Eq for Literal {}

impl std::hash::Hash for Literal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Literal::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Literal::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Literal::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Literal::Masked => 3u8.hash(state),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v}"),
            Literal::Str(s) => write!(f, "'{s}'"),
            Literal::Masked => write!(f, "?"),
        }
    }
}

/// A reference to a column, qualified by its (alias-resolved) table name.
///
/// `column == "*"` encodes the asterisk; an asterisk may be qualified
/// (`employee.*`) or bare (`*`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Resolved table name, if the reference was qualified (or resolvable).
    pub table: Option<String>,
    /// Column name, lower-cased; `"*"` for the asterisk.
    pub column: String,
}

impl ColumnRef {
    /// A qualified column reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }

    /// An unqualified column reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// The bare asterisk `*`.
    pub fn star() -> Self {
        ColumnRef {
            table: None,
            column: "*".to_string(),
        }
    }

    /// `true` if this is the asterisk (qualified or not).
    pub fn is_star(&self) -> bool {
        self.column == "*"
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// The SQL aggregate functions of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggFunc {
    /// Canonical upper-case spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// All aggregate functions, in canonical order.
    pub fn all() -> [AggFunc; 5] {
        [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ]
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A column expression: an optionally aggregated, optionally `DISTINCT`
/// column reference. This is the value expression used in `SELECT`,
/// `ORDER BY`, `HAVING` and predicate left-hand sides.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColExpr {
    /// Optional aggregate applied to the column.
    pub agg: Option<AggFunc>,
    /// `COUNT(DISTINCT x)` style distinct-inside-aggregate flag.
    pub distinct: bool,
    /// The column (possibly `*`, only meaningful under `COUNT`).
    pub col: ColumnRef,
}

impl ColExpr {
    /// A plain (non-aggregated) column expression.
    pub fn plain(col: ColumnRef) -> Self {
        ColExpr {
            agg: None,
            distinct: false,
            col,
        }
    }

    /// An aggregated column expression.
    pub fn agg(agg: AggFunc, col: ColumnRef) -> Self {
        ColExpr {
            agg: Some(agg),
            distinct: false,
            col,
        }
    }

    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        ColExpr::agg(AggFunc::Count, ColumnRef::star())
    }

    /// `true` if an aggregate function is applied.
    pub fn is_aggregated(&self) -> bool {
        self.agg.is_some()
    }
}

impl fmt::Display for ColExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.agg {
            Some(a) => {
                if self.distinct {
                    write!(f, "{a}(DISTINCT {})", self.col)
                } else {
                    write!(f, "{a}({})", self.col)
                }
            }
            None => write!(f, "{}", self.col),
        }
    }
}

/// The `SELECT` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SelectClause {
    /// `SELECT DISTINCT` flag (applies to the whole projection).
    pub distinct: bool,
    /// Projection list, in order.
    pub items: Vec<ColExpr>,
}

/// An equi-join condition `left = right` appearing in `ON`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinCond {
    /// Left column.
    pub left: ColumnRef,
    /// Right column.
    pub right: ColumnRef,
}

impl JoinCond {
    /// Canonical (order-insensitive) form with the lexicographically smaller
    /// side first; used by set-match comparison and the join-path catalog.
    pub fn canonical(&self) -> (ColumnRef, ColumnRef) {
        if self.left <= self.right {
            (self.left.clone(), self.right.clone())
        } else {
            (self.right.clone(), self.left.clone())
        }
    }
}

/// The `FROM` clause: a list of base tables and the equi-join conditions
/// connecting them. The first table is the anchor; table `i + 1` is joined
/// with condition `i` when conditions are present.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FromClause {
    /// Base tables in join order (deduplicated, alias-resolved).
    pub tables: Vec<String>,
    /// Equi-join conditions, one per `JOIN ... ON`.
    pub conds: Vec<JoinCond>,
}

impl FromClause {
    /// A single-table `FROM`.
    pub fn single(table: impl Into<String>) -> Self {
        FromClause {
            tables: vec![table.into()],
            conds: Vec::new(),
        }
    }

    /// `true` if this `FROM` clause joins two or more tables.
    pub fn has_join(&self) -> bool {
        self.tables.len() > 1
    }
}

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `LIKE`
    Like,
    /// `NOT LIKE`
    NotLike,
    /// `IN`
    In,
    /// `NOT IN`
    NotIn,
    /// `BETWEEN ... AND ...`
    Between,
}

impl CmpOp {
    /// `true` for the negated membership/pattern operators.
    pub fn is_negation(&self) -> bool {
        matches!(self, CmpOp::Ne | CmpOp::NotLike | CmpOp::NotIn)
    }

    /// Canonical spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Like => "LIKE",
            CmpOp::NotLike => "NOT LIKE",
            CmpOp::In => "IN",
            CmpOp::NotIn => "NOT IN",
            CmpOp::Between => "BETWEEN",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The right-hand side of a predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A literal value.
    Lit(Literal),
    /// A column expression (column-to-column comparison).
    Col(ColExpr),
    /// A nested subquery (scalar or membership, depending on the operator).
    Subquery(Box<Query>),
}

impl Operand {
    /// `true` if the operand is a nested subquery.
    pub fn is_subquery(&self) -> bool {
        matches!(self, Operand::Subquery(_))
    }
}

/// A single predicate `lhs op rhs [AND rhs2]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    /// Left-hand side column expression.
    pub lhs: ColExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Operand,
    /// Second operand for `BETWEEN`.
    pub rhs2: Option<Operand>,
}

/// Boolean connective between adjacent predicates in a flat condition chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoolConn {
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// A flat conjunction/disjunction chain of predicates, as in the SPIDER SQL
/// subset (`WHERE p1 AND p2 OR p3`; no parenthesized boolean nesting).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Condition {
    /// The predicates, in source order.
    pub preds: Vec<Predicate>,
    /// Connectives; `conns.len() == preds.len() - 1`.
    pub conns: Vec<BoolConn>,
}

impl Condition {
    /// A condition holding a single predicate.
    pub fn single(p: Predicate) -> Self {
        Condition {
            preds: vec![p],
            conns: Vec::new(),
        }
    }

    /// `true` if any connective is `OR`.
    pub fn has_or(&self) -> bool {
        self.conns.contains(&BoolConn::Or)
    }
}

/// Sort direction for `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderDir {
    /// Ascending (the default).
    Asc,
    /// Descending.
    Desc,
}

impl OrderDir {
    /// Canonical spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            OrderDir::Asc => "ASC",
            OrderDir::Desc => "DESC",
        }
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: ColExpr,
    /// Sort direction.
    pub dir: OrderDir,
}

/// The `ORDER BY` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrderClause {
    /// Sort keys in priority order.
    pub items: Vec<OrderItem>,
}

/// A set operation combining two queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetOp {
    /// `UNION`
    Union,
    /// `INTERSECT`
    Intersect,
    /// `EXCEPT`
    Except,
}

impl SetOp {
    /// Canonical spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::Intersect => "INTERSECT",
            SetOp::Except => "EXCEPT",
        }
    }
}

impl fmt::Display for SetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A full query — the root of a parse tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// `SELECT` clause.
    pub select: SelectClause,
    /// `FROM` clause (tables + join conditions).
    pub from: FromClause,
    /// Optional `WHERE` condition.
    pub where_: Option<Condition>,
    /// Optional `GROUP BY` columns.
    pub group_by: Vec<ColumnRef>,
    /// Optional `HAVING` condition (requires `GROUP BY`).
    pub having: Option<Condition>,
    /// Optional `ORDER BY`.
    pub order_by: Option<OrderClause>,
    /// Optional `LIMIT`.
    pub limit: Option<u64>,
    /// Optional trailing compound query (`INTERSECT`/`UNION`/`EXCEPT`).
    pub compound: Option<(SetOp, Box<Query>)>,
}

impl Query {
    /// A minimal `SELECT items FROM table` query, useful in tests and
    /// builders.
    pub fn simple(table: impl Into<String>, items: Vec<ColExpr>) -> Self {
        Query {
            select: SelectClause {
                distinct: false,
                items,
            },
            from: FromClause::single(table),
            where_: None,
            group_by: Vec::new(),
            having: None,
            order_by: None,
            limit: None,
            compound: None,
        }
    }

    /// Iterate over the immediate nested subqueries (in `WHERE`/`HAVING`
    /// operands and the compound arm).
    pub fn subqueries(&self) -> Vec<&Query> {
        let mut out = Vec::new();
        for cond in self.where_.iter().chain(self.having.iter()) {
            for p in &cond.preds {
                if let Operand::Subquery(q) = &p.rhs {
                    out.push(q.as_ref());
                }
                if let Some(Operand::Subquery(q)) = &p.rhs2 {
                    out.push(q.as_ref());
                }
            }
        }
        if let Some((_, q)) = &self.compound {
            out.push(q.as_ref());
        }
        out
    }

    /// `true` if the query (recursively) contains a nested subquery in a
    /// predicate operand. Compound arms do **not** count as nesting here;
    /// SPIDER counts them separately.
    pub fn has_nested_subquery(&self) -> bool {
        for cond in self.where_.iter().chain(self.having.iter()) {
            for p in &cond.preds {
                if p.rhs.is_subquery() || matches!(&p.rhs2, Some(o) if o.is_subquery()) {
                    return true;
                }
            }
        }
        if let Some((_, q)) = &self.compound {
            if q.has_nested_subquery() {
                return true;
            }
        }
        false
    }

    /// `true` if the query is a compound (set-operation) query.
    pub fn is_compound(&self) -> bool {
        self.compound.is_some()
    }

    /// All tables referenced anywhere in the query tree (recursively),
    /// deduplicated, in first-appearance order.
    pub fn all_tables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        for t in &self.from.tables {
            if !out.contains(t) {
                out.push(t.clone());
            }
        }
        for sq in self.subqueries() {
            sq.collect_tables(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested_example() -> Query {
        // SELECT name FROM employee WHERE id IN (SELECT employee_id FROM evaluation)
        let sub = Query::simple(
            "evaluation",
            vec![ColExpr::plain(ColumnRef::new("evaluation", "employee_id"))],
        );
        let mut q = Query::simple(
            "employee",
            vec![ColExpr::plain(ColumnRef::new("employee", "name"))],
        );
        q.where_ = Some(Condition::single(Predicate {
            lhs: ColExpr::plain(ColumnRef::new("employee", "id")),
            op: CmpOp::In,
            rhs: Operand::Subquery(Box::new(sub)),
            rhs2: None,
        }));
        q
    }

    #[test]
    fn subqueries_finds_where_subquery() {
        let q = nested_example();
        assert_eq!(q.subqueries().len(), 1);
        assert!(q.has_nested_subquery());
    }

    #[test]
    fn compound_arm_is_not_nested() {
        let mut q = Query::simple(
            "employee",
            vec![ColExpr::plain(ColumnRef::new("employee", "name"))],
        );
        q.compound = Some((
            SetOp::Union,
            Box::new(Query::simple(
                "employee",
                vec![ColExpr::plain(ColumnRef::new("employee", "name"))],
            )),
        ));
        assert!(!q.has_nested_subquery());
        assert!(q.is_compound());
        assert_eq!(q.subqueries().len(), 1);
    }

    #[test]
    fn all_tables_recurses_and_dedups() {
        let q = nested_example();
        assert_eq!(q.all_tables(), vec!["employee", "evaluation"]);
    }

    #[test]
    fn join_cond_canonical_is_order_insensitive() {
        let a = JoinCond {
            left: ColumnRef::new("a", "x"),
            right: ColumnRef::new("b", "y"),
        };
        let b = JoinCond {
            left: ColumnRef::new("b", "y"),
            right: ColumnRef::new("a", "x"),
        };
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn colexpr_display_formats() {
        assert_eq!(ColExpr::count_star().to_string(), "COUNT(*)");
        let d = ColExpr {
            agg: Some(AggFunc::Count),
            distinct: true,
            col: ColumnRef::new("t", "c"),
        };
        assert_eq!(d.to_string(), "COUNT(DISTINCT t.c)");
    }

    #[test]
    fn condition_has_or() {
        let p = Predicate {
            lhs: ColExpr::plain(ColumnRef::bare("x")),
            op: CmpOp::Eq,
            rhs: Operand::Lit(Literal::Int(1)),
            rhs2: None,
        };
        let mut c = Condition {
            preds: vec![p.clone(), p],
            conns: vec![BoolConn::Or],
        };
        assert!(c.has_or());
        c.conns = vec![BoolConn::And];
        assert!(!c.has_or());
    }
}
