//! # gar-sql — SQL front-end for the GAR NL2SQL system
//!
//! This crate implements the SQL side of the GAR pipeline (Fan et al.,
//! *GAR: A Generate-and-Rank Approach for Natural Language to SQL
//! Translation*, ICDE 2023):
//!
//! - a lexer and recursive-descent [`parser`] for the SPIDER-family SQL
//!   subset;
//! - the typed [`ast`] — GAR's *parse trees* (Section III-A), whose
//!   sub-trees are the recomposition units of the generalizer;
//! - a canonical [`printer`] (round-trip stable);
//! - value [`mask`]ing and re-instantiation (the paper masks literal values
//!   with placeholders before generalization);
//! - the [`normalize`] module implementing SPIDER's *exact set match*
//!   metric;
//! - the SPIDER [`difficulty`] classifier used to bucket results in
//!   Tables 1/4 and Fig. 10.
//!
//! ## Example
//!
//! ```
//! use gar_sql::{parse, to_sql, exact_match, classify, Difficulty};
//!
//! let q = parse(
//!     "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 \
//!      ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
//! ).unwrap();
//!
//! // Aliases are resolved away in the canonical form.
//! assert!(to_sql(&q).starts_with("SELECT employee.name FROM employee JOIN"));
//!
//! // Exact set match ignores cosmetic differences.
//! let q2 = parse(
//!     "SELECT employee.name FROM employee JOIN evaluation \
//!      ON evaluation.employee_id = employee.employee_id \
//!      ORDER BY evaluation.bonus DESC LIMIT 1",
//! ).unwrap();
//! assert!(exact_match(&q, &q2));
//! assert_eq!(classify(&q), Difficulty::Hard);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod difficulty;
#[cfg(test)]
mod edge_tests;
pub mod error;
pub mod mask;
pub mod normalize;
pub mod parser;
pub mod printer;
pub mod token;
pub mod visit;

pub use ast::{
    AggFunc, BoolConn, CmpOp, ColExpr, ColumnRef, Condition, FromClause, JoinCond, Literal,
    Operand, OrderClause, OrderDir, OrderItem, Predicate, Query, SelectClause, SetOp,
};
pub use difficulty::{classify, clause_types, ClauseType, Difficulty};
pub use error::ParseError;
pub use mask::{collect_values, mask_in_place, mask_values, masked_count, unmask_values};
pub use normalize::{exact_match, fingerprint, fingerprint_hash, normalize, NormalizedQuery};
pub use parser::parse;
pub use printer::to_sql;
