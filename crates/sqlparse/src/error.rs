//! Error types for the SQL front-end.

use std::fmt;

/// An error produced while lexing or parsing SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset (lexer) or token index (parser) where the error occurred.
    pub pos: usize,
    /// Human-readable message.
    pub msg: String,
    /// Which phase produced the error.
    pub phase: Phase,
}

/// The front-end phase an error originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
}

impl ParseError {
    /// A lexer error at byte offset `pos`.
    pub fn lex(pos: usize, msg: impl Into<String>) -> Self {
        ParseError {
            pos,
            msg: msg.into(),
            phase: Phase::Lex,
        }
    }

    /// A parser error at token index `pos`.
    pub fn parse(pos: usize, msg: impl Into<String>) -> Self {
        ParseError {
            pos,
            msg: msg.into(),
            phase: Phase::Parse,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
        };
        write!(f, "{phase} error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_position() {
        let e = ParseError::parse(7, "expected FROM");
        assert_eq!(e.to_string(), "parse error at 7: expected FROM");
        let e = ParseError::lex(3, "bad char");
        assert_eq!(e.to_string(), "lex error at 3: bad char");
    }
}
