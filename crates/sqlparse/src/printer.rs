//! Canonical SQL rendering.
//!
//! [`to_sql`] prints a [`Query`] in a canonical textual form that the parser
//! accepts back (a round-trip invariant enforced by property tests):
//! upper-case keywords, lower-case identifiers, fully qualified columns, and
//! no table aliases (the AST stores real table names).

use crate::ast::*;
use std::fmt::Write;

/// Render a query as canonical SQL text.
pub fn to_sql(q: &Query) -> String {
    let mut out = String::with_capacity(128);
    write_query(&mut out, q);
    out
}

fn write_query(out: &mut String, q: &Query) {
    write_select_core(out, q);
    if let Some((op, rhs)) = &q.compound {
        let _ = write!(out, " {} ", op.as_str());
        write_query(out, rhs);
    }
}

fn write_select_core(out: &mut String, q: &Query) {
    out.push_str("SELECT ");
    if q.select.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in q.select.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_colexpr(out, item);
    }

    out.push_str(" FROM ");
    out.push_str(&q.from.tables[0]);
    for (i, t) in q.from.tables.iter().enumerate().skip(1) {
        out.push_str(" JOIN ");
        out.push_str(t);
        if let Some(jc) = q.from.conds.get(i - 1) {
            out.push_str(" ON ");
            write_colref(out, &jc.left);
            out.push_str(" = ");
            write_colref(out, &jc.right);
        }
    }

    if let Some(w) = &q.where_ {
        out.push_str(" WHERE ");
        write_condition(out, w);
    }

    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, c) in q.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_colref(out, c);
        }
        if let Some(h) = &q.having {
            out.push_str(" HAVING ");
            write_condition(out, h);
        }
    }

    if let Some(ob) = &q.order_by {
        out.push_str(" ORDER BY ");
        for (i, item) in ob.items.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_colexpr(out, &item.expr);
            if item.dir == OrderDir::Desc {
                out.push_str(" DESC");
            }
        }
    }

    if let Some(l) = q.limit {
        let _ = write!(out, " LIMIT {l}");
    }
}

fn write_condition(out: &mut String, c: &Condition) {
    for (i, p) in c.preds.iter().enumerate() {
        if i > 0 {
            match c.conns.get(i - 1) {
                Some(BoolConn::And) | None => out.push_str(" AND "),
                Some(BoolConn::Or) => out.push_str(" OR "),
            }
        }
        write_predicate(out, p);
    }
}

fn write_predicate(out: &mut String, p: &Predicate) {
    write_colexpr(out, &p.lhs);
    match p.op {
        CmpOp::Between => {
            out.push_str(" BETWEEN ");
            write_operand(out, &p.rhs);
            out.push_str(" AND ");
            if let Some(r2) = &p.rhs2 {
                write_operand(out, r2);
            } else {
                out.push('?');
            }
        }
        op => {
            let _ = write!(out, " {} ", op.as_str());
            write_operand(out, &p.rhs);
        }
    }
}

fn write_operand(out: &mut String, o: &Operand) {
    match o {
        Operand::Lit(l) => {
            let _ = write!(out, "{l}");
        }
        Operand::Col(c) => write_colexpr(out, c),
        Operand::Subquery(q) => {
            out.push('(');
            write_query(out, q);
            out.push(')');
        }
    }
}

fn write_colexpr(out: &mut String, c: &ColExpr) {
    match c.agg {
        Some(a) => {
            out.push_str(a.as_str());
            out.push('(');
            if c.distinct {
                out.push_str("DISTINCT ");
            }
            write_colref(out, &c.col);
            out.push(')');
        }
        None => write_colref(out, &c.col),
    }
}

fn write_colref(out: &mut String, c: &ColumnRef) {
    match &c.table {
        Some(t) if !c.is_star() => {
            out.push_str(t);
            out.push('.');
            out.push_str(&c.column);
        }
        Some(t) => {
            // Qualified star `t.*`.
            out.push_str(t);
            out.push_str(".*");
        }
        None => out.push_str(&c.column),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(sql: &str) -> String {
        to_sql(&parse(sql).unwrap())
    }

    #[test]
    fn prints_canonical_join() {
        let s = roundtrip(
            "select T1.name from employee as T1 join evaluation as T2 \
             on T1.employee_id = T2.employee_id order by T2.bonus desc limit 1",
        );
        assert_eq!(
            s,
            "SELECT employee.name FROM employee JOIN evaluation \
             ON employee.employee_id = evaluation.employee_id \
             ORDER BY evaluation.bonus DESC LIMIT 1"
        );
    }

    #[test]
    fn roundtrip_is_fixpoint() {
        let cases = [
            "SELECT a FROM t",
            "SELECT DISTINCT t.a, COUNT(*) FROM t WHERE t.b = 'x' GROUP BY t.a HAVING COUNT(*) > 2",
            "SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u) ORDER BY t.a LIMIT 3",
            "SELECT t.a FROM t UNION SELECT u.a FROM u",
            "SELECT t.a FROM t WHERE t.b BETWEEN 1 AND 5",
        ];
        for sql in cases {
            let once = roundtrip(sql);
            let twice = to_sql(&parse(&once).unwrap());
            assert_eq!(once, twice, "canonical form must be a fixpoint: {sql}");
        }
    }

    #[test]
    fn prints_masked_values() {
        let s = roundtrip("SELECT t.a FROM t WHERE t.b = ?");
        assert_eq!(s, "SELECT t.a FROM t WHERE t.b = ?");
    }

    #[test]
    fn prints_count_distinct() {
        let s = roundtrip("SELECT COUNT(DISTINCT t.a) FROM t");
        assert_eq!(s, "SELECT COUNT(DISTINCT t.a) FROM t");
    }

    #[test]
    fn prints_compound_nested() {
        let s = roundtrip(
            "SELECT t.a FROM t EXCEPT SELECT u.a FROM u WHERE u.b = 1",
        );
        assert_eq!(s, "SELECT t.a FROM t EXCEPT SELECT u.a FROM u WHERE u.b = 1");
    }
}
