//! Recursive-descent parser for the GAR SQL subset.
//!
//! The grammar matches what the SPIDER-family benchmarks emit:
//!
//! ```text
//! query      := select_core (setop select_core)?
//! select_core:= SELECT [DISTINCT] items FROM from_clause
//!               [WHERE cond] [GROUP BY cols [HAVING cond]]
//!               [ORDER BY order_items] [LIMIT int]
//! from_clause:= table [AS alias] (JOIN table [AS alias] ON col = col)*
//! cond       := pred ((AND|OR) pred)*
//! pred       := colexpr op operand
//!             | colexpr [NOT] IN '(' query | literals ')'
//!             | colexpr [NOT] LIKE literal
//!             | colexpr BETWEEN operand AND operand
//! operand    := literal | colexpr | '(' query ')'
//! colexpr    := [agg '('] [DISTINCT] colref [')'] | COUNT '(' '*' ')'
//! colref     := [name '.'] name | '*' | name '.' '*'
//! ```
//!
//! Aliases (`employee AS T1`) are resolved during parsing: the produced AST
//! qualifies every column by its real table name. When a column is
//! unqualified and the `FROM` clause has a single table, it is qualified with
//! that table; with multiple tables it is left bare (schema resolution in
//! `gar-schema` finishes the job).

use crate::ast::*;
use crate::error::ParseError;
use crate::token::{tokenize, Keyword, Token};
use std::collections::HashMap;

/// Parse a SQL string into a [`Query`].
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic violation of the
/// subset grammar, including trailing garbage after the query.
pub fn parse(sql: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser::new(&tokens);
    let q = p.parse_query()?;
    p.eat_if(&Token::Semi);
    if !p.at_end() {
        return Err(ParseError::parse(
            p.pos,
            format!("trailing input starting at token {}", p.peek_desc()),
        ));
    }
    Ok(q)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Token]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.tokens.get(self.pos + off)
    }

    fn peek_desc(&self) -> String {
        match self.peek() {
            Some(t) => format!("{t}"),
            None => "<eof>".to_string(),
        }
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat_if(&Token::Keyword(kw))
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::parse(
                self.pos,
                format!("expected {}, found {}", kw.as_str(), self.peek_desc()),
            ))
        }
    }

    fn expect_tok(&mut self, t: Token) -> Result<(), ParseError> {
        if self.eat_if(&t) {
            Ok(())
        } else {
            Err(ParseError::parse(
                self.pos,
                format!("expected {t}, found {}", self.peek_desc()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(ParseError::parse(
                self.pos,
                format!("expected identifier, found {}", self.peek_desc()),
            )),
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        let mut q = self.parse_select_core()?;
        let setop = match self.peek() {
            Some(Token::Keyword(Keyword::Union)) => Some(SetOp::Union),
            Some(Token::Keyword(Keyword::Intersect)) => Some(SetOp::Intersect),
            Some(Token::Keyword(Keyword::Except)) => Some(SetOp::Except),
            _ => None,
        };
        if let Some(op) = setop {
            self.pos += 1;
            let rhs = self.parse_query()?;
            q.compound = Some((op, Box::new(rhs)));
        }
        Ok(q)
    }

    fn parse_select_core(&mut self) -> Result<Query, ParseError> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);

        // Projection items use raw (alias-unresolved) column refs first; we
        // resolve after the FROM clause gives us the alias map.
        let mut raw_items = vec![self.parse_colexpr()?];
        while self.eat_if(&Token::Comma) {
            raw_items.push(self.parse_colexpr()?);
        }

        self.expect_kw(Keyword::From)?;
        let (from, aliases) = self.parse_from()?;

        let resolver = AliasResolver::new(&from, aliases);
        let items: Vec<ColExpr> = raw_items
            .into_iter()
            .map(|c| resolver.resolve_colexpr(c))
            .collect();

        let where_ = if self.eat_kw(Keyword::Where) {
            Some(self.parse_condition(&resolver)?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        let mut having = None;
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(resolver.resolve_colref(self.parse_colref()?));
            while self.eat_if(&Token::Comma) {
                group_by.push(resolver.resolve_colref(self.parse_colref()?));
            }
            if self.eat_kw(Keyword::Having) {
                having = Some(self.parse_condition(&resolver)?);
            }
        }

        let order_by = if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            let mut items = vec![self.parse_order_item(&resolver)?];
            while self.eat_if(&Token::Comma) {
                items.push(self.parse_order_item(&resolver)?);
            }
            Some(OrderClause { items })
        } else {
            None
        };

        let limit = if self.eat_kw(Keyword::Limit) {
            match self.bump() {
                Some(Token::Int(v)) if *v >= 0 => Some(*v as u64),
                _ => {
                    return Err(ParseError::parse(
                        self.pos,
                        "expected non-negative integer after LIMIT",
                    ))
                }
            }
        } else {
            None
        };

        Ok(Query {
            select: SelectClause { distinct, items },
            from,
            where_,
            group_by,
            having,
            order_by,
            limit,
            compound: None,
        })
    }

    fn parse_from(&mut self) -> Result<(FromClause, HashMap<String, String>), ParseError> {
        let mut aliases: HashMap<String, String> = HashMap::new();
        let mut tables = Vec::new();
        let mut conds = Vec::new();

        let (t, alias) = self.parse_table_item()?;
        if let Some(a) = alias {
            aliases.insert(a, t.clone());
        }
        tables.push(t);

        while self.eat_kw(Keyword::Join) {
            let (t, alias) = self.parse_table_item()?;
            if let Some(a) = alias {
                aliases.insert(a, t.clone());
            }
            if !tables.contains(&t) {
                tables.push(t);
            }
            self.expect_kw(Keyword::On)?;
            let left = self.parse_colref()?;
            self.expect_tok(Token::Eq)?;
            let right = self.parse_colref()?;
            conds.push(JoinCond { left, right });
        }

        // Resolve the join-condition columns now that all aliases are known.
        let from = FromClause { tables, conds };
        let resolver = AliasResolver::new(&from, aliases.clone());
        let conds = from
            .conds
            .iter()
            .map(|jc| JoinCond {
                left: resolver.resolve_colref(jc.left.clone()),
                right: resolver.resolve_colref(jc.right.clone()),
            })
            .collect();
        Ok((
            FromClause {
                tables: from.tables,
                conds,
            },
            aliases,
        ))
    }

    fn parse_table_item(&mut self) -> Result<(String, Option<String>), ParseError> {
        let table = self.expect_ident()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.expect_ident()?)
        } else {
            // Implicit alias: `FROM employee e` — an identifier not followed
            // by `.` in table position. We only accept explicit AS to keep
            // the grammar unambiguous, matching SPIDER's style.
            None
        };
        Ok((table, alias))
    }

    fn parse_condition(&mut self, resolver: &AliasResolver) -> Result<Condition, ParseError> {
        let mut preds = vec![self.parse_predicate(resolver)?];
        let mut conns = Vec::new();
        loop {
            if self.eat_kw(Keyword::And) {
                conns.push(BoolConn::And);
            } else if self.eat_kw(Keyword::Or) {
                conns.push(BoolConn::Or);
            } else {
                break;
            }
            preds.push(self.parse_predicate(resolver)?);
        }
        Ok(Condition { preds, conns })
    }

    fn parse_predicate(&mut self, resolver: &AliasResolver) -> Result<Predicate, ParseError> {
        let lhs = resolver.resolve_colexpr(self.parse_colexpr()?);

        // NOT IN / NOT LIKE
        if self.eat_kw(Keyword::Not) {
            if self.eat_kw(Keyword::In) {
                let rhs = self.parse_in_rhs()?;
                return Ok(Predicate {
                    lhs,
                    op: CmpOp::NotIn,
                    rhs,
                    rhs2: None,
                });
            }
            if self.eat_kw(Keyword::Like) {
                let rhs = self.parse_operand(resolver)?;
                return Ok(Predicate {
                    lhs,
                    op: CmpOp::NotLike,
                    rhs,
                    rhs2: None,
                });
            }
            return Err(ParseError::parse(
                self.pos,
                "expected IN or LIKE after NOT",
            ));
        }

        if self.eat_kw(Keyword::In) {
            let rhs = self.parse_in_rhs()?;
            return Ok(Predicate {
                lhs,
                op: CmpOp::In,
                rhs,
                rhs2: None,
            });
        }
        if self.eat_kw(Keyword::Like) {
            let rhs = self.parse_operand(resolver)?;
            return Ok(Predicate {
                lhs,
                op: CmpOp::Like,
                rhs,
                rhs2: None,
            });
        }
        if self.eat_kw(Keyword::Between) {
            let low = self.parse_operand(resolver)?;
            self.expect_kw(Keyword::And)?;
            let high = self.parse_operand(resolver)?;
            return Ok(Predicate {
                lhs,
                op: CmpOp::Between,
                rhs: low,
                rhs2: Some(high),
            });
        }

        let op = match self.bump() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => {
                return Err(ParseError::parse(
                    self.pos.saturating_sub(1),
                    "expected comparison operator",
                ))
            }
        };
        let rhs = self.parse_operand(resolver)?;
        Ok(Predicate {
            lhs,
            op,
            rhs,
            rhs2: None,
        })
    }

    /// `IN` right-hand side: a parenthesized subquery. (Literal lists are not
    /// produced by the benchmark generators, but a subquery is mandatory.)
    fn parse_in_rhs(&mut self) -> Result<Operand, ParseError> {
        self.expect_tok(Token::LParen)?;
        if self.peek() == Some(&Token::Keyword(Keyword::Select)) {
            let q = self.parse_query()?;
            self.expect_tok(Token::RParen)?;
            Ok(Operand::Subquery(Box::new(q)))
        } else {
            Err(ParseError::parse(
                self.pos,
                "expected subquery after IN (",
            ))
        }
    }

    fn parse_operand(&mut self, resolver: &AliasResolver) -> Result<Operand, ParseError> {
        match self.peek() {
            Some(Token::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(Operand::Lit(Literal::Int(v)))
            }
            Some(Token::Float(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(Operand::Lit(Literal::Float(v)))
            }
            Some(Token::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Operand::Lit(Literal::Str(s)))
            }
            Some(Token::Placeholder) => {
                self.pos += 1;
                Ok(Operand::Lit(Literal::Masked))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.peek() == Some(&Token::Keyword(Keyword::Select)) {
                    let q = self.parse_query()?;
                    self.expect_tok(Token::RParen)?;
                    Ok(Operand::Subquery(Box::new(q)))
                } else {
                    Err(ParseError::parse(self.pos, "expected subquery after ("))
                }
            }
            Some(Token::Ident(_)) | Some(Token::Keyword(_)) => {
                let ce = self.parse_colexpr()?;
                Ok(Operand::Col(resolver.resolve_colexpr(ce)))
            }
            _ => Err(ParseError::parse(
                self.pos,
                format!("expected operand, found {}", self.peek_desc()),
            )),
        }
    }

    fn parse_order_item(&mut self, resolver: &AliasResolver) -> Result<OrderItem, ParseError> {
        let expr = resolver.resolve_colexpr(self.parse_colexpr()?);
        let dir = if self.eat_kw(Keyword::Desc) {
            OrderDir::Desc
        } else {
            // ASC is the default and may be explicit.
            self.eat_kw(Keyword::Asc);
            OrderDir::Asc
        };
        Ok(OrderItem { expr, dir })
    }

    fn parse_colexpr(&mut self) -> Result<ColExpr, ParseError> {
        let agg = match self.peek() {
            Some(Token::Keyword(Keyword::Count)) => Some(AggFunc::Count),
            Some(Token::Keyword(Keyword::Sum)) => Some(AggFunc::Sum),
            Some(Token::Keyword(Keyword::Avg)) => Some(AggFunc::Avg),
            Some(Token::Keyword(Keyword::Min)) => Some(AggFunc::Min),
            Some(Token::Keyword(Keyword::Max)) => Some(AggFunc::Max),
            _ => None,
        };
        if let Some(a) = agg {
            // Only treat the keyword as an aggregate when followed by `(`.
            if self.peek_at(1) == Some(&Token::LParen) {
                self.pos += 2; // keyword + '('
                let distinct = self.eat_kw(Keyword::Distinct);
                let col = self.parse_colref()?;
                self.expect_tok(Token::RParen)?;
                return Ok(ColExpr {
                    agg: Some(a),
                    distinct,
                    col,
                });
            }
            // Otherwise fall through: `count` used as a column name.
            // (Benchmarks never do this, but a parser should not explode.)
            let word = match self.bump() {
                Some(Token::Keyword(k)) => k.as_str().to_ascii_lowercase(),
                _ => unreachable!("peeked keyword"),
            };
            return self.finish_colref_from(word).map(ColExpr::plain);
        }
        let col = self.parse_colref()?;
        Ok(ColExpr {
            agg: None,
            distinct: false,
            col,
        })
    }

    fn parse_colref(&mut self) -> Result<ColumnRef, ParseError> {
        match self.peek() {
            Some(Token::Star) => {
                self.pos += 1;
                Ok(ColumnRef::star())
            }
            Some(Token::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                self.finish_colref_from(name)
            }
            _ => Err(ParseError::parse(
                self.pos,
                format!("expected column reference, found {}", self.peek_desc()),
            )),
        }
    }

    /// Continue a column reference after its first identifier was consumed.
    fn finish_colref_from(&mut self, first: String) -> Result<ColumnRef, ParseError> {
        if self.eat_if(&Token::Dot) {
            match self.bump() {
                Some(Token::Ident(col)) => Ok(ColumnRef {
                    table: Some(first),
                    column: col.clone(),
                }),
                Some(Token::Star) => Ok(ColumnRef {
                    table: Some(first),
                    column: "*".to_string(),
                }),
                _ => Err(ParseError::parse(
                    self.pos.saturating_sub(1),
                    "expected column name after '.'",
                )),
            }
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }
}

/// Resolves table aliases (and single-table implicit qualification) in
/// column references.
struct AliasResolver {
    aliases: HashMap<String, String>,
    single_table: Option<String>,
    tables: Vec<String>,
}

impl AliasResolver {
    fn new(from: &FromClause, aliases: HashMap<String, String>) -> Self {
        AliasResolver {
            single_table: if from.tables.len() == 1 {
                Some(from.tables[0].clone())
            } else {
                None
            },
            tables: from.tables.clone(),
            aliases,
        }
    }

    fn resolve_colref(&self, c: ColumnRef) -> ColumnRef {
        match c.table {
            Some(t) => {
                let real = self.aliases.get(&t).cloned().unwrap_or(t);
                ColumnRef {
                    table: Some(real),
                    column: c.column,
                }
            }
            None => {
                if c.is_star() {
                    return c;
                }
                match &self.single_table {
                    Some(t) => ColumnRef {
                        table: Some(t.clone()),
                        column: c.column,
                    },
                    // Ambiguous without schema knowledge — leave bare; the
                    // schema resolver finishes qualification.
                    None => {
                        let _ = &self.tables;
                        c
                    }
                }
            }
        }
    }

    fn resolve_colexpr(&self, c: ColExpr) -> ColExpr {
        ColExpr {
            agg: c.agg,
            distinct: c.distinct,
            col: self.resolve_colref(c.col),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_select() {
        let q = parse("SELECT name FROM employee").unwrap();
        assert_eq!(q.from.tables, vec!["employee"]);
        assert_eq!(
            q.select.items,
            vec![ColExpr::plain(ColumnRef::new("employee", "name"))]
        );
    }

    #[test]
    fn resolves_aliases_in_join() {
        let q = parse(
            "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 \
             ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
        )
        .unwrap();
        assert_eq!(q.from.tables, vec!["employee", "evaluation"]);
        assert_eq!(
            q.select.items[0].col,
            ColumnRef::new("employee", "name")
        );
        let jc = &q.from.conds[0];
        assert_eq!(jc.left, ColumnRef::new("employee", "employee_id"));
        assert_eq!(jc.right, ColumnRef::new("evaluation", "employee_id"));
        let ob = q.order_by.as_ref().unwrap();
        assert_eq!(ob.items[0].expr.col, ColumnRef::new("evaluation", "bonus"));
        assert_eq!(ob.items[0].dir, OrderDir::Desc);
        assert_eq!(q.limit, Some(1));
    }

    #[test]
    fn parses_where_with_and_or() {
        let q = parse("SELECT a FROM t WHERE a = 1 AND b > 2 OR c != 'x'").unwrap();
        let w = q.where_.unwrap();
        assert_eq!(w.preds.len(), 3);
        assert_eq!(w.conns, vec![BoolConn::And, BoolConn::Or]);
        assert_eq!(w.preds[2].op, CmpOp::Ne);
    }

    #[test]
    fn parses_nested_in_subquery() {
        let q = parse(
            "SELECT name FROM employee WHERE employee_id IN \
             (SELECT employee_id FROM evaluation WHERE bonus > 100)",
        )
        .unwrap();
        assert!(q.has_nested_subquery());
        let w = q.where_.unwrap();
        assert_eq!(w.preds[0].op, CmpOp::In);
        match &w.preds[0].rhs {
            Operand::Subquery(sq) => {
                assert_eq!(sq.from.tables, vec!["evaluation"]);
            }
            other => panic!("expected subquery, got {other:?}"),
        }
    }

    #[test]
    fn parses_scalar_subquery_comparison() {
        let q = parse("SELECT name FROM t WHERE age > (SELECT AVG(age) FROM t)").unwrap();
        let w = q.where_.unwrap();
        assert!(matches!(w.preds[0].rhs, Operand::Subquery(_)));
    }

    #[test]
    fn parses_group_having() {
        let q = parse(
            "SELECT dept, COUNT(*) FROM employee GROUP BY dept HAVING COUNT(*) >= 3",
        )
        .unwrap();
        assert_eq!(q.group_by, vec![ColumnRef::new("employee", "dept")]);
        let h = q.having.unwrap();
        assert_eq!(h.preds[0].lhs, ColExpr::count_star());
        assert_eq!(h.preds[0].op, CmpOp::Ge);
    }

    #[test]
    fn parses_compound_union() {
        let q = parse("SELECT a FROM t UNION SELECT b FROM u WHERE b = 1").unwrap();
        let (op, rhs) = q.compound.unwrap();
        assert_eq!(op, SetOp::Union);
        assert_eq!(rhs.from.tables, vec!["u"]);
    }

    #[test]
    fn parses_between() {
        let q = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 10").unwrap();
        let w = q.where_.unwrap();
        assert_eq!(w.preds[0].op, CmpOp::Between);
        assert_eq!(w.preds[0].rhs, Operand::Lit(Literal::Int(1)));
        assert_eq!(w.preds[0].rhs2, Some(Operand::Lit(Literal::Int(10))));
    }

    #[test]
    fn parses_not_in_and_not_like() {
        let q = parse(
            "SELECT a FROM t WHERE a NOT IN (SELECT a FROM u) AND b NOT LIKE 'x'",
        )
        .unwrap();
        let w = q.where_.unwrap();
        assert_eq!(w.preds[0].op, CmpOp::NotIn);
        assert_eq!(w.preds[1].op, CmpOp::NotLike);
    }

    #[test]
    fn parses_count_distinct() {
        let q = parse("SELECT COUNT(DISTINCT name) FROM t").unwrap();
        let it = &q.select.items[0];
        assert_eq!(it.agg, Some(AggFunc::Count));
        assert!(it.distinct);
    }

    #[test]
    fn parses_masked_placeholder() {
        let q = parse("SELECT a FROM t WHERE b = ?").unwrap();
        let w = q.where_.unwrap();
        assert_eq!(w.preds[0].rhs, Operand::Lit(Literal::Masked));
    }

    #[test]
    fn unqualified_columns_get_single_table() {
        let q = parse("SELECT a FROM t WHERE b = 1 GROUP BY c ORDER BY d").unwrap();
        assert_eq!(q.select.items[0].col, ColumnRef::new("t", "a"));
        assert_eq!(
            q.where_.unwrap().preds[0].lhs.col,
            ColumnRef::new("t", "b")
        );
        assert_eq!(q.group_by[0], ColumnRef::new("t", "c"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT a FROM t extra junk").is_err());
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse("SELECT a WHERE b = 1").is_err());
    }

    #[test]
    fn rejects_in_without_subquery() {
        assert!(parse("SELECT a FROM t WHERE a IN (1, 2)").is_err());
    }

    #[test]
    fn accepts_trailing_semicolon() {
        assert!(parse("SELECT a FROM t;").is_ok());
    }

    #[test]
    fn parses_qualified_star_under_count() {
        let q = parse("SELECT COUNT(t.*) FROM t").unwrap();
        assert_eq!(
            q.select.items[0].col,
            ColumnRef {
                table: Some("t".into()),
                column: "*".into()
            }
        );
    }

    #[test]
    fn order_by_asc_explicit_and_default_agree() {
        let a = parse("SELECT a FROM t ORDER BY a ASC").unwrap();
        let b = parse("SELECT a FROM t ORDER BY a").unwrap();
        assert_eq!(a, b);
    }
}
