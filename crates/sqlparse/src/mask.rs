//! Value masking (Section III-A of the paper).
//!
//! The generalization process "should not depend on the specific literal
//! values", so literals in predicates are replaced by placeholders before
//! queries enter the generalizer. `LIMIT` values are preserved — the paper's
//! `order` component explicitly carries `LIMIT 1` semantics ("the highest one
//! time bonus").

use crate::ast::*;

/// Return a copy of `q` with every predicate literal replaced by
/// [`Literal::Masked`], recursively through subqueries and compound arms.
pub fn mask_values(q: &Query) -> Query {
    let mut out = q.clone();
    mask_in_place(&mut out);
    out
}

/// Mask a query in place. See [`mask_values`].
pub fn mask_in_place(q: &mut Query) {
    if let Some(c) = &mut q.where_ {
        mask_condition(c);
    }
    if let Some(c) = &mut q.having {
        mask_condition(c);
    }
    if let Some((_, rhs)) = &mut q.compound {
        mask_in_place(rhs);
    }
}

fn mask_condition(c: &mut Condition) {
    for p in &mut c.preds {
        mask_operand(&mut p.rhs);
        if let Some(r2) = &mut p.rhs2 {
            mask_operand(r2);
        }
    }
}

fn mask_operand(o: &mut Operand) {
    match o {
        Operand::Lit(l) => *l = Literal::Masked,
        Operand::Subquery(q) => mask_in_place(q),
        Operand::Col(_) => {}
    }
}

/// Collect every (column, literal) pair from the query's predicates,
/// recursively. Used by value post-processing to learn which columns carry
/// which literal values in the sample set.
pub fn collect_values(q: &Query) -> Vec<(ColumnRef, Literal)> {
    let mut out = Vec::new();
    collect_rec(q, &mut out);
    out
}

fn collect_rec(q: &Query, out: &mut Vec<(ColumnRef, Literal)>) {
    for cond in q.where_.iter().chain(q.having.iter()) {
        for p in &cond.preds {
            if let Operand::Lit(l) = &p.rhs {
                if !l.is_masked() {
                    out.push((p.lhs.col.clone(), l.clone()));
                }
            }
            if let Some(Operand::Lit(l)) = &p.rhs2 {
                if !l.is_masked() {
                    out.push((p.lhs.col.clone(), l.clone()));
                }
            }
            if let Operand::Subquery(sq) = &p.rhs {
                collect_rec(sq, out);
            }
        }
    }
    if let Some((_, rhs)) = &q.compound {
        collect_rec(rhs, out);
    }
}

/// Count the masked literal placeholders in a query, recursively.
pub fn masked_count(q: &Query) -> usize {
    let mut n = 0;
    for cond in q.where_.iter().chain(q.having.iter()) {
        for p in &cond.preds {
            if let Operand::Lit(l) = &p.rhs {
                n += usize::from(l.is_masked());
            }
            if let Some(Operand::Lit(l)) = &p.rhs2 {
                n += usize::from(l.is_masked());
            }
            if let Operand::Subquery(sq) = &p.rhs {
                n += masked_count(sq);
            }
            if let Some(Operand::Subquery(sq)) = &p.rhs2 {
                n += masked_count(sq);
            }
        }
    }
    if let Some((_, rhs)) = &q.compound {
        n += masked_count(rhs);
    }
    n
}

/// Re-instantiate masked literals from an ordered list of replacement
/// values (value post-processing, Section V-A3). Literals are consumed in
/// pre-order; unmatched placeholders stay masked.
pub fn unmask_values(q: &Query, values: &[Literal]) -> Query {
    let mut out = q.clone();
    let mut iter = values.iter();
    unmask_rec(&mut out, &mut iter);
    out
}

fn unmask_rec<'a>(q: &mut Query, values: &mut impl Iterator<Item = &'a Literal>) {
    let mut conds: Vec<&mut Condition> = Vec::new();
    if let Some(c) = &mut q.where_ {
        conds.push(c);
    }
    if let Some(c) = &mut q.having {
        conds.push(c);
    }
    for cond in conds {
        for p in &mut cond.preds {
            unmask_operand(&mut p.rhs, values);
            if let Some(r2) = &mut p.rhs2 {
                unmask_operand(r2, values);
            }
        }
    }
    if let Some((_, rhs)) = &mut q.compound {
        unmask_rec(rhs, values);
    }
}

fn unmask_operand<'a>(o: &mut Operand, values: &mut impl Iterator<Item = &'a Literal>) {
    match o {
        Operand::Lit(l) if l.is_masked() => {
            if let Some(v) = values.next() {
                *l = v.clone();
            }
        }
        Operand::Subquery(q) => unmask_rec(q, values),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::to_sql;

    #[test]
    fn masks_where_and_having_literals() {
        let q = parse(
            "SELECT a FROM t WHERE b = 'x' AND c > 3 GROUP BY a HAVING COUNT(*) > 2",
        )
        .unwrap();
        let m = mask_values(&q);
        assert_eq!(
            to_sql(&m),
            "SELECT t.a FROM t WHERE t.b = ? AND t.c > ? \
             GROUP BY t.a HAVING COUNT(*) > ?"
        );
    }

    #[test]
    fn preserves_limit() {
        let q = parse("SELECT a FROM t ORDER BY b DESC LIMIT 1").unwrap();
        let m = mask_values(&q);
        assert_eq!(m.limit, Some(1));
    }

    #[test]
    fn masks_inside_subquery_and_compound() {
        let q = parse(
            "SELECT a FROM t WHERE b IN (SELECT b FROM u WHERE c = 5) \
             UNION SELECT a FROM v WHERE d = 'y'",
        )
        .unwrap();
        let m = mask_values(&q);
        let sql = to_sql(&m);
        assert!(!sql.contains('5'), "{sql}");
        assert!(!sql.contains("'y'"), "{sql}");
        assert_eq!(sql.matches('?').count(), 2);
    }

    #[test]
    fn collect_then_unmask_roundtrips() {
        let q = parse("SELECT a FROM t WHERE b = 'x' AND c > 3").unwrap();
        let values: Vec<Literal> = collect_values(&q).into_iter().map(|(_, l)| l).collect();
        let m = mask_values(&q);
        let back = unmask_values(&m, &values);
        assert_eq!(to_sql(&back), to_sql(&q));
    }

    #[test]
    fn unmask_with_too_few_values_leaves_placeholders() {
        let q = parse("SELECT a FROM t WHERE b = ? AND c = ?").unwrap();
        let back = unmask_values(&q, &[Literal::Int(1)]);
        let sql = to_sql(&back);
        assert!(sql.contains("t.b = 1"));
        assert!(sql.contains("t.c = ?"));
    }

    #[test]
    fn masked_count_counts_recursively() {
        let q = parse(
            "SELECT a FROM t WHERE b = ? AND c IN (SELECT c FROM u WHERE d = ?) \
             UNION SELECT a FROM v WHERE e = ?",
        )
        .unwrap();
        assert_eq!(masked_count(&q), 3);
        let q = parse("SELECT a FROM t WHERE b = 1").unwrap();
        assert_eq!(masked_count(&q), 0);
    }

    #[test]
    fn collect_values_pairs_columns() {
        let q = parse("SELECT a FROM t WHERE b = 'spain' AND c BETWEEN 1 AND 9").unwrap();
        let vals = collect_values(&q);
        assert_eq!(vals.len(), 3);
        assert_eq!(vals[0].0.column, "b");
        assert_eq!(vals[0].1, Literal::Str("spain".into()));
        assert_eq!(vals[1].1, Literal::Int(1));
        assert_eq!(vals[2].1, Literal::Int(9));
    }
}
