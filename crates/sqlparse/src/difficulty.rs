//! SPIDER difficulty (hardness) classification.
//!
//! Reimplements the component-counting rules of the official SPIDER
//! evaluator so that Table 1, Table 4 and Fig. 10 bucket queries the same
//! way the paper does. SPIDER "defines the SQL difficulty based on the
//! number of SQL clauses, so that queries that contain more SQL keywords are
//! considered to be harder" (paper, footnote 2).

use crate::ast::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// SPIDER hardness level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Difficulty {
    /// Easy.
    Easy,
    /// Medium.
    Medium,
    /// Hard.
    Hard,
    /// Extra Hard.
    ExtraHard,
}

impl Difficulty {
    /// All levels in ascending hardness order.
    pub fn all() -> [Difficulty; 4] {
        [
            Difficulty::Easy,
            Difficulty::Medium,
            Difficulty::Hard,
            Difficulty::ExtraHard,
        ]
    }

    /// Human-readable name used in report tables.
    pub fn as_str(&self) -> &'static str {
        match self {
            Difficulty::Easy => "Easy",
            Difficulty::Medium => "Medium",
            Difficulty::Hard => "Hard",
            Difficulty::ExtraHard => "Extra Hard",
        }
    }
}

impl fmt::Display for Difficulty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Count of "component 1" features: WHERE, GROUP BY, ORDER BY, LIMIT, JOIN,
/// OR, LIKE (per the official SPIDER `eval_hardness`).
fn count_component1(q: &Query) -> usize {
    let mut n = 0;
    if q.where_.is_some() {
        n += 1;
    }
    if !q.group_by.is_empty() {
        n += 1;
    }
    if q.order_by.is_some() {
        n += 1;
    }
    if q.limit.is_some() {
        n += 1;
    }
    if q.from.has_join() {
        n += q.from.tables.len() - 1;
    }
    for cond in q.where_.iter().chain(q.having.iter()) {
        n += cond
            .conns
            .iter()
            .filter(|c| **c == BoolConn::Or)
            .count();
        n += cond
            .preds
            .iter()
            .filter(|p| matches!(p.op, CmpOp::Like | CmpOp::NotLike))
            .count();
    }
    n
}

/// Count of "component 2" features: nested subqueries in operands, plus
/// compound set operations.
fn count_component2(q: &Query) -> usize {
    let mut n = 0;
    for cond in q.where_.iter().chain(q.having.iter()) {
        for p in &cond.preds {
            if p.rhs.is_subquery() {
                n += 1;
            }
            if matches!(&p.rhs2, Some(o) if o.is_subquery()) {
                n += 1;
            }
        }
    }
    if q.compound.is_some() {
        n += 1;
    }
    n
}

/// Count of "others": #aggs > 1, #select columns > 1, #where predicates > 1,
/// #group-by columns > 1 each contribute one.
fn count_others(q: &Query) -> usize {
    let mut n = 0;
    let agg_count = q
        .select
        .items
        .iter()
        .filter(|i| i.is_aggregated())
        .count()
        + q.order_by
            .as_ref()
            .map(|ob| ob.items.iter().filter(|i| i.expr.is_aggregated()).count())
            .unwrap_or(0)
        + q.having
            .as_ref()
            .map(|h| h.preds.iter().filter(|p| p.lhs.is_aggregated()).count())
            .unwrap_or(0);
    if agg_count > 1 {
        n += 1;
    }
    if q.select.items.len() > 1 {
        n += 1;
    }
    let where_preds = q.where_.as_ref().map(|c| c.preds.len()).unwrap_or(0);
    if where_preds > 1 {
        n += 1;
    }
    if q.group_by.len() > 1 {
        n += 1;
    }
    n
}

/// Classify a query into a SPIDER hardness level.
pub fn classify(q: &Query) -> Difficulty {
    // For compound queries, SPIDER counts the components of both sides.
    let (c1, c2, others) = match &q.compound {
        Some((_, rhs)) => {
            let (a1, a2, ao) = (count_component1(q), count_component2(q), count_others(q));
            let (b1, b2, bo) = (
                count_component1(rhs),
                count_component2(rhs),
                count_others(rhs),
            );
            (a1 + b1, a2 + b2, ao.max(bo))
        }
        None => (count_component1(q), count_component2(q), count_others(q)),
    };

    if c1 <= 1 && others == 0 && c2 == 0 {
        Difficulty::Easy
    } else if (others <= 2 && c1 <= 1 && c2 == 0) || (c1 <= 2 && others < 2 && c2 == 0) {
        Difficulty::Medium
    } else if (others > 2 && c1 <= 2 && c2 == 0)
        || (c1 > 2 && c1 <= 3 && others <= 2 && c2 == 0)
        || (c1 <= 1 && others == 0 && c2 <= 1)
    {
        Difficulty::Hard
    } else {
        Difficulty::ExtraHard
    }
}

/// Clause-type categories used by Table 5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ClauseType {
    /// Contains a nested subquery.
    Nested,
    /// Contains a negation operator (`!=`, `NOT IN`, `NOT LIKE`).
    Negation,
    /// Contains `ORDER BY`.
    OrderBy,
    /// Contains `GROUP BY`.
    GroupBy,
    /// None of the above.
    Others,
}

impl ClauseType {
    /// All categories in the paper's column order.
    pub fn all() -> [ClauseType; 5] {
        [
            ClauseType::Nested,
            ClauseType::Negation,
            ClauseType::OrderBy,
            ClauseType::GroupBy,
            ClauseType::Others,
        ]
    }

    /// Table-5 column header.
    pub fn as_str(&self) -> &'static str {
        match self {
            ClauseType::Nested => "Nested",
            ClauseType::Negation => "Negation",
            ClauseType::OrderBy => "ORDERBY",
            ClauseType::GroupBy => "GROUPBY",
            ClauseType::Others => "Others",
        }
    }
}

/// All clause-type categories a query belongs to (a query can appear in
/// several Table-5 columns; `Others` only when none apply).
pub fn clause_types(q: &Query) -> Vec<ClauseType> {
    let mut out = Vec::new();
    if q.has_nested_subquery() {
        out.push(ClauseType::Nested);
    }
    let has_negation = {
        fn neg(q: &Query) -> bool {
            for cond in q.where_.iter().chain(q.having.iter()) {
                if cond.preds.iter().any(|p| p.op.is_negation()) {
                    return true;
                }
            }
            q.subqueries().iter().any(|s| neg(s))
        }
        neg(q)
    };
    if has_negation {
        out.push(ClauseType::Negation);
    }
    if q.order_by.is_some() {
        out.push(ClauseType::OrderBy);
    }
    if !q.group_by.is_empty() {
        out.push(ClauseType::GroupBy);
    }
    if out.is_empty() {
        out.push(ClauseType::Others);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diff(sql: &str) -> Difficulty {
        classify(&parse(sql).unwrap())
    }

    #[test]
    fn bare_select_is_easy() {
        assert_eq!(diff("SELECT t.a FROM t"), Difficulty::Easy);
    }

    #[test]
    fn single_where_is_easy() {
        assert_eq!(diff("SELECT t.a FROM t WHERE t.b = 1"), Difficulty::Easy);
    }

    #[test]
    fn two_columns_with_where_is_medium() {
        assert_eq!(
            diff("SELECT t.a, t.b FROM t WHERE t.c = 1"),
            Difficulty::Medium
        );
    }

    #[test]
    fn join_with_group_and_order_is_hard_or_worse() {
        let d = diff(
            "SELECT a.x FROM a JOIN b ON a.id = b.aid \
             GROUP BY a.x ORDER BY COUNT(*) DESC LIMIT 1",
        );
        assert!(d >= Difficulty::Hard, "got {d:?}");
    }

    #[test]
    fn nested_plus_components_is_extra_hard() {
        let d = diff(
            "SELECT a.x, a.y FROM a JOIN b ON a.id = b.aid \
             WHERE a.z > 1 AND a.x IN (SELECT c.x FROM c) \
             GROUP BY a.x ORDER BY COUNT(*) DESC LIMIT 3",
        );
        assert_eq!(d, Difficulty::ExtraHard);
    }

    #[test]
    fn simple_nested_is_hard() {
        let d = diff("SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u)");
        assert_eq!(d, Difficulty::Hard);
    }

    #[test]
    fn clause_types_cover_each_category() {
        let q = parse(
            "SELECT t.a FROM t WHERE t.b != 1 AND t.c IN (SELECT u.c FROM u) \
             GROUP BY t.a ORDER BY t.a",
        )
        .unwrap();
        let cts = clause_types(&q);
        assert!(cts.contains(&ClauseType::Nested));
        assert!(cts.contains(&ClauseType::Negation));
        assert!(cts.contains(&ClauseType::OrderBy));
        assert!(cts.contains(&ClauseType::GroupBy));
        assert!(!cts.contains(&ClauseType::Others));
    }

    #[test]
    fn plain_query_is_others() {
        let q = parse("SELECT t.a FROM t WHERE t.b = 1").unwrap();
        assert_eq!(clause_types(&q), vec![ClauseType::Others]);
    }

    #[test]
    fn difficulty_is_monotone_in_added_components() {
        let base = diff("SELECT t.a FROM t");
        let more = diff("SELECT t.a FROM t WHERE t.b = 1 OR t.c = 2 ORDER BY t.a LIMIT 1");
        assert!(more >= base);
    }
}
