//! Read-only traversal helpers over the AST.

use crate::ast::*;

/// Collect every column reference in the query (excluding `*`), recursively,
/// in clause order. Duplicates are kept.
pub fn all_column_refs(q: &Query) -> Vec<ColumnRef> {
    let mut out = Vec::new();
    collect(q, &mut out);
    out.retain(|c| !c.is_star());
    out
}

fn collect(q: &Query, out: &mut Vec<ColumnRef>) {
    for item in &q.select.items {
        out.push(item.col.clone());
    }
    for jc in &q.from.conds {
        out.push(jc.left.clone());
        out.push(jc.right.clone());
    }
    for cond in q.where_.iter().chain(q.having.iter()) {
        for p in &cond.preds {
            out.push(p.lhs.col.clone());
            if let Operand::Col(c) = &p.rhs {
                out.push(c.col.clone());
            }
            if let Some(Operand::Col(c)) = &p.rhs2 {
                out.push(c.col.clone());
            }
            if let Operand::Subquery(sq) = &p.rhs {
                collect(sq, out);
            }
            if let Some(Operand::Subquery(sq)) = &p.rhs2 {
                collect(sq, out);
            }
        }
    }
    for g in &q.group_by {
        out.push(g.clone());
    }
    if let Some(ob) = &q.order_by {
        for item in &ob.items {
            out.push(item.expr.col.clone());
        }
    }
    if let Some((_, rhs)) = &q.compound {
        collect(rhs, out);
    }
}

/// Column references of the *top-level* query only (no subquery or compound
/// recursion). Used by semantic validation during recomposition, where each
/// level is validated against its own `FROM` scope.
pub fn top_level_column_refs(q: &Query) -> Vec<ColumnRef> {
    let mut out = Vec::new();
    for item in &q.select.items {
        out.push(item.col.clone());
    }
    for jc in &q.from.conds {
        out.push(jc.left.clone());
        out.push(jc.right.clone());
    }
    for cond in q.where_.iter().chain(q.having.iter()) {
        for p in &cond.preds {
            out.push(p.lhs.col.clone());
            if let Operand::Col(c) = &p.rhs {
                out.push(c.col.clone());
            }
            if let Some(Operand::Col(c)) = &p.rhs2 {
                out.push(c.col.clone());
            }
        }
    }
    for g in &q.group_by {
        out.push(g.clone());
    }
    if let Some(ob) = &q.order_by {
        for item in &ob.items {
            out.push(item.expr.col.clone());
        }
    }
    out.retain(|c| !c.is_star());
    out
}

/// Count the total number of predicates in `WHERE` clauses, recursively.
pub fn where_predicate_count(q: &Query) -> usize {
    let mut n = q.where_.as_ref().map(|c| c.preds.len()).unwrap_or(0);
    for sq in q.subqueries() {
        n += where_predicate_count(sq);
    }
    n
}

/// Maximum subquery nesting depth (a query without subqueries has depth 0).
pub fn nesting_depth(q: &Query) -> usize {
    let mut depth = 0;
    for cond in q.where_.iter().chain(q.having.iter()) {
        for p in &cond.preds {
            if let Operand::Subquery(sq) = &p.rhs {
                depth = depth.max(1 + nesting_depth(sq));
            }
            if let Some(Operand::Subquery(sq)) = &p.rhs2 {
                depth = depth.max(1 + nesting_depth(sq));
            }
        }
    }
    if let Some((_, rhs)) = &q.compound {
        depth = depth.max(nesting_depth(rhs));
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn all_refs_recurse_into_subqueries() {
        let q = parse(
            "SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u WHERE u.c = 1)",
        )
        .unwrap();
        let refs = all_column_refs(&q);
        assert!(refs.contains(&ColumnRef::new("u", "c")));
        assert!(refs.contains(&ColumnRef::new("t", "a")));
    }

    #[test]
    fn top_level_refs_do_not_recurse() {
        let q = parse(
            "SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u WHERE u.c = 1)",
        )
        .unwrap();
        let refs = top_level_column_refs(&q);
        assert!(!refs.iter().any(|c| c.table.as_deref() == Some("u")));
    }

    #[test]
    fn nesting_depth_counts_levels() {
        let q0 = parse("SELECT t.a FROM t").unwrap();
        assert_eq!(nesting_depth(&q0), 0);
        let q1 = parse("SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u)").unwrap();
        assert_eq!(nesting_depth(&q1), 1);
        let q2 = parse(
            "SELECT t.a FROM t WHERE t.b IN \
             (SELECT u.b FROM u WHERE u.c IN (SELECT v.c FROM v))",
        )
        .unwrap();
        assert_eq!(nesting_depth(&q2), 2);
    }

    #[test]
    fn where_predicate_count_recurses() {
        let q = parse(
            "SELECT t.a FROM t WHERE t.b = 1 AND t.c IN \
             (SELECT u.c FROM u WHERE u.d = 2)",
        )
        .unwrap();
        assert_eq!(where_predicate_count(&q), 3);
    }

    #[test]
    fn star_is_excluded() {
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        assert!(all_column_refs(&q).is_empty());
    }
}
