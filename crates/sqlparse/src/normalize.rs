//! Query normalization and exact set match.
//!
//! Reimplements the SPIDER evaluation protocol the paper relies on
//! (Section V-A4, *Translation Accuracy*): each SQL query is decomposed into
//! its clauses, and two queries match exactly when every clause matches as a
//! *set* — projection order, join-condition orientation, predicate order
//! (modulo identical connectives) and literal values are all ignored, while
//! `ORDER BY` stays order-sensitive and `LIMIT` is compared by value.

use crate::ast::*;
use std::collections::BTreeSet;

/// The normalized, comparison-ready form of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalizedQuery {
    /// `SELECT DISTINCT` flag.
    pub distinct: bool,
    /// Projection set.
    pub select: BTreeSet<NormColExpr>,
    /// Table set.
    pub tables: BTreeSet<String>,
    /// Canonicalized join conditions.
    pub joins: BTreeSet<(String, String)>,
    /// Normalized `WHERE` predicates (values masked) plus the sorted
    /// connective multiset.
    pub where_preds: BTreeSet<NormPred>,
    /// `true` if the `WHERE`/`HAVING` chain contains an `OR`.
    pub has_or: bool,
    /// Group-by column set.
    pub group_by: BTreeSet<String>,
    /// Normalized `HAVING` predicates.
    pub having_preds: BTreeSet<NormPred>,
    /// Order-by keys, order sensitive.
    pub order_by: Vec<(NormColExpr, OrderDir)>,
    /// `LIMIT` value.
    pub limit: Option<u64>,
    /// Compound op and normalized right-hand side.
    pub compound: Option<(SetOp, Box<NormalizedQuery>)>,
}

/// Normalized column expression: `(agg, distinct, table, column)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NormColExpr {
    /// Aggregate (if any).
    pub agg: Option<AggFunc>,
    /// Distinct-in-aggregate flag.
    pub distinct: bool,
    /// Qualified column as `table.column` (or bare column).
    pub col: String,
}

/// Normalized predicate. Literal operands are collapsed to a kind marker so
/// values never affect exact match; subquery operands are compared by their
/// normalized form rendered to a canonical string.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NormPred {
    /// Left-hand side.
    pub lhs: NormColExpr,
    /// Operator spelling.
    pub op: &'static str,
    /// Canonical operand description.
    pub rhs: String,
}

fn norm_colexpr(c: &ColExpr) -> NormColExpr {
    NormColExpr {
        agg: c.agg,
        distinct: c.distinct,
        col: c.col.to_string(),
    }
}

fn norm_operand(o: &Operand) -> String {
    match o {
        Operand::Lit(_) => "<value>".to_string(),
        Operand::Col(c) => format!("col:{c}"),
        Operand::Subquery(q) => format!("sub:{}", fingerprint(&normalize(q))),
    }
}

fn norm_condition(c: &Condition) -> BTreeSet<NormPred> {
    c.preds
        .iter()
        .map(|p| {
            let rhs = match (&p.rhs, &p.rhs2) {
                (a, Some(b)) => format!("{}..{}", norm_operand(a), norm_operand(b)),
                (a, None) => norm_operand(a),
            };
            NormPred {
                lhs: norm_colexpr(&p.lhs),
                op: p.op.as_str(),
                rhs,
            }
        })
        .collect()
}

/// Normalize a query for exact-set-match comparison.
pub fn normalize(q: &Query) -> NormalizedQuery {
    NormalizedQuery {
        distinct: q.select.distinct,
        select: q.select.items.iter().map(norm_colexpr).collect(),
        tables: q.from.tables.iter().cloned().collect(),
        joins: q
            .from
            .conds
            .iter()
            .map(|jc| {
                let (a, b) = jc.canonical();
                (a.to_string(), b.to_string())
            })
            .collect(),
        where_preds: q.where_.as_ref().map(norm_condition).unwrap_or_default(),
        has_or: q.where_.as_ref().map(Condition::has_or).unwrap_or(false)
            || q.having.as_ref().map(Condition::has_or).unwrap_or(false),
        group_by: q.group_by.iter().map(|c| c.to_string()).collect(),
        having_preds: q.having.as_ref().map(norm_condition).unwrap_or_default(),
        order_by: q
            .order_by
            .as_ref()
            .map(|ob| {
                ob.items
                    .iter()
                    .map(|i| (norm_colexpr(&i.expr), i.dir))
                    .collect()
            })
            .unwrap_or_default(),
        limit: q.limit,
        compound: q
            .compound
            .as_ref()
            .map(|(op, rhs)| (*op, Box::new(normalize(rhs)))),
    }
}

/// A stable string fingerprint of a normalized query; equal fingerprints
/// iff the normalized forms are equal. Used for subquery operand
/// comparison and anywhere the full canonical text is wanted.
pub fn fingerprint(n: &NormalizedQuery) -> String {
    let mut s = String::with_capacity(128);
    fingerprint_into(n, &mut s);
    s
}

/// A stable 64-bit fingerprint hash: FNV-1a over the exact byte stream
/// [`fingerprint`] would produce, without materializing the string. Equal
/// normalized forms always hash equal; distinct forms collide with
/// probability ~n²/2⁶⁵, negligible at pool scale, so dedup sets can key on
/// the `u64` instead of allocating a `String` per candidate. Callers that
/// need *exactness* (not just dedup) must confirm with [`exact_match`].
pub fn fingerprint_hash(n: &NormalizedQuery) -> u64 {
    let mut h = Fnv64::default();
    fingerprint_into(n, &mut h);
    h.0
}

/// Streaming FNV-1a 64 sink for [`std::fmt::Write`] output.
struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl std::fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

fn fingerprint_into<W: std::fmt::Write>(n: &NormalizedQuery, s: &mut W) {
    use std::fmt::Write;
    let _ = write!(s, "d{}|S[", u8::from(n.distinct));
    for c in &n.select {
        let _ = write!(s, "{:?},{},{};", c.agg, u8::from(c.distinct), c.col);
    }
    let _ = s.write_str("]T[");
    for t in &n.tables {
        let _ = write!(s, "{t};");
    }
    let _ = s.write_str("]J[");
    for (a, b) in &n.joins {
        let _ = write!(s, "{a}={b};");
    }
    let _ = s.write_str("]W[");
    for p in &n.where_preds {
        let _ = write!(s, "{:?}{}{};", p.lhs, p.op, p.rhs);
    }
    let _ = write!(s, "]o{}G[", u8::from(n.has_or));
    for g in &n.group_by {
        let _ = write!(s, "{g};");
    }
    let _ = s.write_str("]H[");
    for p in &n.having_preds {
        let _ = write!(s, "{:?}{}{};", p.lhs, p.op, p.rhs);
    }
    let _ = s.write_str("]O[");
    for (c, d) in &n.order_by {
        let _ = write!(s, "{:?},{};", c, d.as_str());
    }
    let _ = write!(s, "]L{:?}", n.limit);
    if let Some((op, rhs)) = &n.compound {
        let _ = write!(s, "C{}(", op.as_str());
        fingerprint_into(rhs, s);
        let _ = s.write_char(')');
    }
}

/// Exact set match between two queries (the paper's *Translation Accuracy*
/// metric). Values are ignored; structure must match clause-by-clause.
pub fn exact_match(a: &Query, b: &Query) -> bool {
    normalize(a) == normalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn em(a: &str, b: &str) -> bool {
        exact_match(&parse(a).unwrap(), &parse(b).unwrap())
    }

    #[test]
    fn projection_order_is_ignored() {
        assert!(em(
            "SELECT t.a, t.b FROM t",
            "SELECT t.b, t.a FROM t"
        ));
    }

    #[test]
    fn literal_values_are_ignored() {
        assert!(em(
            "SELECT t.a FROM t WHERE t.b = 'x'",
            "SELECT t.a FROM t WHERE t.b = 'y'"
        ));
        assert!(em(
            "SELECT t.a FROM t WHERE t.b > 3",
            "SELECT t.a FROM t WHERE t.b > ?"
        ));
    }

    #[test]
    fn operator_differences_matter() {
        assert!(!em(
            "SELECT t.a FROM t WHERE t.b > 3",
            "SELECT t.a FROM t WHERE t.b < 3"
        ));
    }

    #[test]
    fn join_orientation_is_ignored() {
        assert!(em(
            "SELECT a.x FROM a JOIN b ON a.id = b.id",
            "SELECT a.x FROM a JOIN b ON b.id = a.id"
        ));
    }

    #[test]
    fn different_join_paths_differ() {
        assert!(!em(
            "SELECT a.x FROM a JOIN b ON a.id = b.aid",
            "SELECT a.x FROM a JOIN b ON a.id = b.bid"
        ));
    }

    #[test]
    fn order_by_direction_matters() {
        assert!(!em(
            "SELECT t.a FROM t ORDER BY t.a DESC",
            "SELECT t.a FROM t ORDER BY t.a"
        ));
    }

    #[test]
    fn order_by_sequence_matters() {
        assert!(!em(
            "SELECT t.a FROM t ORDER BY t.a, t.b",
            "SELECT t.a FROM t ORDER BY t.b, t.a"
        ));
    }

    #[test]
    fn limit_value_matters() {
        assert!(!em(
            "SELECT t.a FROM t ORDER BY t.a LIMIT 1",
            "SELECT t.a FROM t ORDER BY t.a LIMIT 3"
        ));
    }

    #[test]
    fn where_predicate_order_is_ignored() {
        assert!(em(
            "SELECT t.a FROM t WHERE t.b = 1 AND t.c = 2",
            "SELECT t.a FROM t WHERE t.c = 2 AND t.b = 1"
        ));
    }

    #[test]
    fn and_vs_or_matters() {
        assert!(!em(
            "SELECT t.a FROM t WHERE t.b = 1 AND t.c = 2",
            "SELECT t.a FROM t WHERE t.b = 1 OR t.c = 2"
        ));
    }

    #[test]
    fn subquery_structure_matters() {
        assert!(em(
            "SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u WHERE u.c = 1)",
            "SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u WHERE u.c = 2)"
        ));
        assert!(!em(
            "SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u WHERE u.c = 1)",
            "SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u)"
        ));
    }

    #[test]
    fn compound_op_matters() {
        assert!(!em(
            "SELECT t.a FROM t UNION SELECT u.a FROM u",
            "SELECT t.a FROM t INTERSECT SELECT u.a FROM u"
        ));
    }

    #[test]
    fn fingerprints_agree_with_equality() {
        let a = normalize(&parse("SELECT t.a FROM t WHERE t.b = 1").unwrap());
        let b = normalize(&parse("SELECT t.a FROM t WHERE t.b = 99").unwrap());
        let c = normalize(&parse("SELECT t.a FROM t WHERE t.b > 1").unwrap());
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn fingerprint_hash_agrees_with_string_fingerprint() {
        // The hash is FNV-1a over the exact fingerprint byte stream, so
        // equal strings ⇒ equal hashes and (on these distinct structures)
        // distinct strings ⇒ distinct hashes.
        let queries = [
            "SELECT t.a FROM t WHERE t.b = 1",
            "SELECT t.a FROM t WHERE t.b = 99", // value-masked: same as above
            "SELECT t.a FROM t WHERE t.b > 1",
            "SELECT t.a, t.b FROM t",
            "SELECT t.b, t.a FROM t", // projection set: same as above
            "SELECT DISTINCT t.a FROM t",
            "SELECT t.a FROM t WHERE t.b IN (SELECT u.b FROM u)",
            "SELECT t.a FROM t UNION SELECT u.a FROM u",
            "SELECT t.a FROM t ORDER BY t.a DESC LIMIT 3",
        ];
        for a in &queries {
            for b in &queries {
                let na = normalize(&parse(a).unwrap());
                let nb = normalize(&parse(b).unwrap());
                assert_eq!(
                    fingerprint(&na) == fingerprint(&nb),
                    fingerprint_hash(&na) == fingerprint_hash(&nb),
                    "hash/string fingerprint disagree for {a} vs {b}"
                );
            }
        }
        // Reference check: the hash really is FNV-1a of the string bytes.
        let n = normalize(&parse(queries[0]).unwrap());
        let mut want = 0xcbf2_9ce4_8422_2325u64;
        for &byte in fingerprint(&n).as_bytes() {
            want ^= u64::from(byte);
            want = want.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(fingerprint_hash(&n), want);
    }

    #[test]
    fn distinct_flag_matters() {
        assert!(!em("SELECT DISTINCT t.a FROM t", "SELECT t.a FROM t"));
    }
}
