//! Property tests on the SQL front-end: printer/parser round-trips,
//! normalization stability, and masking idempotence over randomly
//! generated ASTs.

use gar_sql::ast::*;
use gar_sql::{exact_match, fingerprint, mask_values, normalize, parse, to_sql};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        gar_sql::token::Keyword::from_word(s).is_none()
    })
}

fn colref() -> impl Strategy<Value = ColumnRef> {
    (ident(), ident()).prop_map(|(t, c)| ColumnRef::new(t, c))
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i32>().prop_map(|v| Literal::Int(v as i64)),
        (-1_000_000i32..1_000_000).prop_map(|v| Literal::Float(v as f64 / 100.0)),
        "[a-z ]{0,12}".prop_map(Literal::Str),
        Just(Literal::Masked),
    ]
}

fn agg() -> impl Strategy<Value = Option<AggFunc>> {
    prop_oneof![
        Just(None),
        Just(Some(AggFunc::Count)),
        Just(Some(AggFunc::Sum)),
        Just(Some(AggFunc::Avg)),
        Just(Some(AggFunc::Min)),
        Just(Some(AggFunc::Max)),
    ]
}

fn colexpr() -> impl Strategy<Value = ColExpr> {
    (agg(), any::<bool>(), colref()).prop_map(|(agg, distinct, col)| ColExpr {
        agg,
        distinct: distinct && agg.is_some(),
        col,
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn predicate() -> impl Strategy<Value = Predicate> {
    (colexpr(), cmp_op(), literal()).prop_map(|(lhs, op, lit)| Predicate {
        lhs: ColExpr {
            agg: None,
            distinct: false,
            col: lhs.col,
        },
        op,
        rhs: Operand::Lit(lit),
        rhs2: None,
    })
}

fn condition() -> impl Strategy<Value = Condition> {
    (
        proptest::collection::vec(predicate(), 1..4),
        proptest::collection::vec(any::<bool>(), 3),
    )
        .prop_map(|(preds, ors)| {
            let conns = (0..preds.len().saturating_sub(1))
                .map(|i| if ors[i] { BoolConn::Or } else { BoolConn::And })
                .collect();
            Condition { preds, conns }
        })
}

prop_compose! {
    fn query()(
        items in proptest::collection::vec(colexpr(), 1..4),
        table in ident(),
        where_ in proptest::option::of(condition()),
        order_col in colexpr(),
        has_order in any::<bool>(),
        desc in any::<bool>(),
        limit in proptest::option::of(1u64..50),
        distinct in any::<bool>(),
    ) -> Query {
        let mut q = Query::simple(table, items);
        q.select.distinct = distinct;
        q.where_ = where_;
        if has_order {
            q.order_by = Some(OrderClause {
                items: vec![OrderItem {
                    expr: ColExpr { agg: None, distinct: false, col: order_col.col },
                    dir: if desc { OrderDir::Desc } else { OrderDir::Asc },
                }],
            });
            q.limit = limit;
        }
        q
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Printing then parsing reproduces an exact-set-match-equal query.
    #[test]
    fn print_parse_roundtrip(q in query()) {
        let sql = to_sql(&q);
        let back = parse(&sql).unwrap_or_else(|e| panic!("{e}: {sql}"));
        prop_assert!(exact_match(&q, &back), "{sql}");
    }

    /// The canonical form is a fixpoint: print(parse(print(q))) == print(q).
    #[test]
    fn canonical_form_is_fixpoint(q in query()) {
        let once = to_sql(&q);
        let twice = to_sql(&parse(&once).expect("canonical parses"));
        prop_assert_eq!(once, twice);
    }

    /// Masking is idempotent and never changes the normalized structure.
    #[test]
    fn masking_is_idempotent_and_structure_preserving(q in query()) {
        let m1 = mask_values(&q);
        let m2 = mask_values(&m1);
        prop_assert_eq!(&m1, &m2);
        prop_assert!(exact_match(&q, &m1), "masking changed structure");
    }

    /// Fingerprints agree with normalized equality.
    #[test]
    fn fingerprint_agrees_with_normalize(a in query(), b in query()) {
        let (na, nb) = (normalize(&a), normalize(&b));
        let (fa, fb) = (fingerprint(&na), fingerprint(&nb));
        prop_assert_eq!(na == nb, fa == fb);
    }

    /// The difficulty classifier is total (never panics) and produces a
    /// stable value for equal queries.
    #[test]
    fn classify_is_total_and_stable(q in query()) {
        let d1 = gar_sql::classify(&q);
        let d2 = gar_sql::classify(&parse(&to_sql(&q)).expect("roundtrip"));
        prop_assert_eq!(d1, d2);
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_is_panic_free(s in "\\PC*") {
        let _ = gar_sql::token::tokenize(&s);
    }

    /// The parser never panics on arbitrary token soup.
    #[test]
    fn parser_is_panic_free(s in "[a-zA-Z0-9_ .,()'*=<>!?;-]{0,80}") {
        let _ = parse(&s);
    }
}
