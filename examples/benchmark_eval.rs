//! Evaluate GAR against a baseline on a held-out benchmark split,
//! reporting the paper's metrics (exact match, execution accuracy, and the
//! SPIDER difficulty breakdown).
//!
//! ```sh
//! cargo run --release --example benchmark_eval
//! ```

use gar::baselines::{smbop, Nl2SqlSystem};
use gar::benchmarks::{execution_match, spider_sim, SpiderSimConfig, Tally};
use gar::core::{GarConfig, GarSystem, PrepareConfig};
use gar::sql::{classify, exact_match, Difficulty, Query};
use std::collections::BTreeMap;

fn main() {
    let bench = spider_sim(SpiderSimConfig {
        train_dbs: 8,
        val_dbs: 2,
        queries_per_db: 40,
        seed: 11,
    });
    println!(
        "spider_sim: {} train / {} dev examples over {} databases",
        bench.train.len(),
        bench.dev.len(),
        bench.dbs.len()
    );

    println!("training GAR ...");
    let config = GarConfig {
        prepare: PrepareConfig {
            gen_size: 1200,
            ..PrepareConfig::default()
        },
        train_gen_size: 500,
        ..GarConfig::default()
    };
    let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, config);

    // GAR: prepare each dev database under the paper's protocol and
    // translate every dev question.
    let mut gar_by_diff: BTreeMap<Difficulty, Tally> = BTreeMap::new();
    let mut gar_exec = Tally::default();
    let mut by_db: BTreeMap<&str, Vec<&gar::benchmarks::Example>> = BTreeMap::new();
    for ex in &bench.dev {
        by_db.entry(ex.db.as_str()).or_default().push(ex);
    }
    for (db_name, exs) in &by_db {
        let db = bench.db(db_name).expect("dev db");
        let gold: Vec<Query> = exs.iter().map(|e| e.sql.clone()).collect();
        let prepared = gar.prepare_eval_db(db, &gold);
        for ex in exs {
            let tr = gar.translate(db, &prepared, &ex.nl);
            let ok = tr.top1().map(|t| exact_match(t, &ex.sql)).unwrap_or(false);
            gar_by_diff
                .entry(classify(&ex.sql))
                .or_default()
                .record(ok);
            gar_exec.record(
                tr.top1()
                    .map(|t| execution_match(&db.database, t, &ex.sql))
                    .unwrap_or(false),
            );
        }
    }

    // Baseline: SMBOP-like, translating directly from the schema.
    let baseline = smbop();
    let mut base_by_diff: BTreeMap<Difficulty, Tally> = BTreeMap::new();
    for ex in &bench.dev {
        let db = bench.db(&ex.db).expect("dev db");
        let ok = baseline
            .translate(db, &ex.nl)
            .map(|q| exact_match(&q, &ex.sql))
            .unwrap_or(false);
        base_by_diff
            .entry(classify(&ex.sql))
            .or_default()
            .record(ok);
    }

    println!("\n{:<12} {:>8} {:>8}", "difficulty", "GAR", baseline.name());
    let mut gar_all = Tally::default();
    let mut base_all = Tally::default();
    for d in Difficulty::all() {
        let g = gar_by_diff.get(&d).cloned().unwrap_or_default();
        let b = base_by_diff.get(&d).cloned().unwrap_or_default();
        gar_all.merge(&g);
        base_all.merge(&b);
        println!(
            "{:<12} {:>7.1}% {:>7.1}%",
            d.as_str(),
            g.accuracy() * 100.0,
            b.accuracy() * 100.0
        );
    }
    println!(
        "{:<12} {:>7.1}% {:>7.1}%",
        "overall",
        gar_all.accuracy() * 100.0,
        base_all.accuracy() * 100.0
    );
    println!(
        "\nGAR execution accuracy: {:.1}%",
        gar_exec.accuracy() * 100.0
    );
}
