//! GAR-J: join annotations disambiguate dual-role joins (the paper's
//! Fig. 7 / QBEN scenario).
//!
//! The flights table references airports through *two* foreign keys
//! (`source_airport`, `dest_airport`). Plain GAR renders the same dialect
//! for both join paths, so "arriving flights" vs "departing flights" is a
//! coin flip; with join annotations the dialect carries the role semantics
//! and the ranker picks the right path.
//!
//! ```sh
//! cargo run --release --example join_annotations
//! ```

use gar::benchmarks::{qben_sim, spider_sim, QbenSimConfig, SpiderSimConfig};
use gar::core::{GarConfig, GarSystem, PrepareConfig};
use gar::sql::{exact_match, to_sql};

fn main() {
    // Train once on the synthetic cross-domain benchmark.
    println!("training GAR ...");
    let bench = spider_sim(SpiderSimConfig {
        train_dbs: 6,
        val_dbs: 1,
        queries_per_db: 40,
        seed: 3,
    });
    let config = GarConfig {
        prepare: PrepareConfig {
            gen_size: 800,
            ..PrepareConfig::default()
        },
        train_gen_size: 400,
        ..GarConfig::default()
    };
    let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, config);

    // GAR-J is the same trained system with annotation-aware preparation.
    let mut garj = gar.clone();
    garj.config.prepare.use_annotations = true;

    // The QBEN flight_net database ships curated join annotations.
    let qben = qben_sim(QbenSimConfig::default());
    let db = qben.db("flight_net").expect("flight_net exists");
    println!("\njoin annotations on flight_net:");
    for ann in db.annotations.iter() {
        println!(
            "  {} = {}  ->  \"{}\" (key entity: {})",
            ann.condition.0, ann.condition.1, ann.description, ann.table_key
        );
    }

    let samples: Vec<_> = qben
        .samples
        .iter()
        .filter(|e| e.db == "flight_net")
        .map(|e| e.sql.clone())
        .collect();
    let plain = gar.prepare_with_samples(db, &samples);
    let annotated = garj.prepare_with_samples(db, &samples);

    let mut plain_ok = 0usize;
    let mut ann_ok = 0usize;
    let mut shown = 0usize;
    let tests: Vec<_> = qben.test.iter().filter(|e| e.db == "flight_net").collect();
    for ex in &tests {
        let p = gar.translate(db, &plain, &ex.nl);
        let a = garj.translate(db, &annotated, &ex.nl);
        let p_ok = p.top1().map(|t| exact_match(t, &ex.sql)).unwrap_or(false);
        let a_ok = a.top1().map(|t| exact_match(t, &ex.sql)).unwrap_or(false);
        plain_ok += usize::from(p_ok);
        ann_ok += usize::from(a_ok);
        if shown < 2 && !p_ok && a_ok {
            shown += 1;
            println!("\nNL   : {}", ex.nl);
            println!("gold : {}", to_sql(&ex.sql));
            println!(
                "GAR  : {}  [incorrect]",
                p.top1().map(to_sql).unwrap_or_default()
            );
            println!(
                "GAR-J: {}  [correct]",
                a.top1().map(to_sql).unwrap_or_default()
            );
        }
    }
    println!(
        "\nflight_net test accuracy: GAR {}/{}  vs  GAR-J {}/{}",
        plain_ok,
        tests.len(),
        ann_ok,
        tests.len()
    );
}
