//! An interactive NL interface to a database — the end-user product the
//! paper motivates. Trains (or loads cached) ranking models, prepares the
//! database from sample queries, then answers NL questions from stdin with
//! the translated SQL *and* its execution result.
//!
//! Artifacts are cached under `.gar-cache/` via the `gar-core` codecs, so
//! the second launch skips straight to the online phase (the paper's
//! offline/online split).
//!
//! ```sh
//! cargo run --release --example nlidb_repl
//! # then type questions, e.g.:
//! #   find the name of the employee with the highest bonus
//! #   how many evaluations are there for each employee?
//! ```

use gar::benchmarks::{populate, spider_sim, GeneratedDb, SpiderSimConfig};
use gar::core::{
    prepared_from_bytes, prepared_to_bytes, system_from_bytes, system_to_bytes, GarConfig,
    GarSystem, PrepareConfig,
};
use gar::engine::execute;
use gar::schema::{AnnotationSet, SchemaBuilder};
use gar::sql::{parse, to_sql};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, Write};
use std::path::Path;

fn demo_db() -> GeneratedDb {
    let schema = SchemaBuilder::new("hr")
        .table("employee", |t| {
            t.col_int("employee_id")
                .col_text("name")
                .col_int("age")
                .col_text("city")
                .pk(&["employee_id"])
        })
        .table("evaluation", |t| {
            t.col_int("employee_id")
                .col_int("year_awarded")
                .col_float("bonus")
                .pk(&["employee_id", "year_awarded"])
        })
        .fk("evaluation", "employee_id", "employee", "employee_id")
        .build();
    let mut rng = StdRng::seed_from_u64(2023);
    GeneratedDb {
        database: populate(&schema, &mut rng),
        schema,
        annotations: AnnotationSet::empty(),
    }
}

fn sample_queries() -> Vec<gar::sql::Query> {
    [
        "SELECT employee.name FROM employee JOIN evaluation \
         ON employee.employee_id = evaluation.employee_id \
         ORDER BY evaluation.bonus DESC LIMIT 1",
        "SELECT employee.age FROM employee WHERE employee.name = 'x'",
        "SELECT employee.name FROM employee WHERE employee.age > 30",
        "SELECT employee.name FROM employee WHERE employee.city = 'paris'",
        "SELECT COUNT(*) FROM evaluation GROUP BY evaluation.employee_id",
        "SELECT AVG(evaluation.bonus) FROM evaluation",
        "SELECT COUNT(*) FROM employee",
    ]
    .iter()
    .map(|s| parse(s).expect("sample parses"))
    .collect()
}

fn load_or_train(cache: &Path) -> GarSystem {
    let sys_path = cache.join("system.gar");
    if let Ok(bytes) = std::fs::read(&sys_path) {
        if let Ok(sys) = system_from_bytes(&bytes) {
            eprintln!("loaded trained system from {}", sys_path.display());
            return sys;
        }
    }
    eprintln!("training GAR (first launch only) ...");
    let bench = spider_sim(SpiderSimConfig {
        train_dbs: 6,
        val_dbs: 1,
        queries_per_db: 40,
        seed: 5,
    });
    let config = GarConfig {
        prepare: PrepareConfig {
            gen_size: 800,
            ..PrepareConfig::default()
        },
        train_gen_size: 400,
        ..GarConfig::default()
    };
    let (sys, _) = GarSystem::train(&bench.dbs, &bench.train, config);
    let _ = std::fs::create_dir_all(cache);
    let _ = std::fs::write(&sys_path, system_to_bytes(&sys));
    sys
}

fn main() {
    let cache = Path::new(".gar-cache");
    let gar = load_or_train(cache);
    let db = demo_db();

    let prep_path = cache.join(format!("{}.prepared", db.schema.name));
    let prepared = match std::fs::read(&prep_path).ok().and_then(|b| {
        prepared_from_bytes(&b).ok().filter(|p| {
            // Reject stale caches built by a different encoder.
            p.embeds.first().map(Vec::len) == Some(gar.retrieval.embed_dim())
        })
    }) {
        Some(p) => {
            eprintln!("loaded prepared index ({} candidates)", p.entries.len());
            p
        }
        None => {
            eprintln!("preparing database (generalize + dialects + encode) ...");
            let p = gar.prepare_with_samples(&db, &sample_queries());
            let _ = std::fs::create_dir_all(cache);
            let _ = std::fs::write(&prep_path, prepared_to_bytes(&p));
            p
        }
    };

    println!(
        "NLIDB ready over `{}` ({} candidate queries). Type a question, or \"quit\".",
        db.schema.name,
        prepared.entries.len()
    );
    let stdin = std::io::stdin();
    loop {
        print!("nl> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let question = line.trim();
        if question.is_empty() {
            continue;
        }
        if question.eq_ignore_ascii_case("quit") || question.eq_ignore_ascii_case("exit") {
            break;
        }
        let tr = gar.translate(&db, &prepared, question);
        match tr.top1() {
            Some(sql) => {
                println!("sql> {}", to_sql(sql));
                match execute(&db.database, sql) {
                    Ok(rs) => {
                        println!("     {} row(s)", rs.rows.len());
                        for row in rs.rows.iter().take(5) {
                            let cells: Vec<String> =
                                row.iter().map(|d| d.to_string()).collect();
                            println!("     {}", cells.join(" | "));
                        }
                        if rs.rows.len() > 5 {
                            println!("     ...");
                        }
                    }
                    Err(e) => println!("     (not executable: {e})"),
                }
            }
            None => println!("sql> <no translation>"),
        }
    }
    println!("bye");
}
