//! Quickstart: the paper's Fig. 1 scenario, end to end.
//!
//! Builds the employee/evaluation database, trains a small GAR instance on
//! a synthetic cross-domain benchmark, prepares the database from a handful
//! of sample SQL queries, and translates the motivating question
//! *"Find the name of the employee with the highest bonus"*.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gar::benchmarks::{populate, spider_sim, GeneratedDb, SpiderSimConfig};
use gar::core::{GarConfig, GarSystem, PrepareConfig};
use gar::schema::{AnnotationSet, SchemaBuilder};
use gar::sql::{parse, to_sql};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The Fig. 1 database: employee + compound-keyed evaluation.
    let schema = SchemaBuilder::new("hr")
        .table("employee", |t| {
            t.col_int("employee_id")
                .col_text("name")
                .col_int("age")
                .pk(&["employee_id"])
        })
        .table("evaluation", |t| {
            t.col_int("employee_id")
                .col_int("year_awarded")
                .col_float("bonus")
                .pk(&["employee_id", "year_awarded"])
        })
        .fk("evaluation", "employee_id", "employee", "employee_id")
        .build();
    let mut rng = StdRng::seed_from_u64(1);
    let db = GeneratedDb {
        database: populate(&schema, &mut rng),
        schema,
        annotations: AnnotationSet::empty(),
    };

    // 2. Train GAR's two ranking models on a small synthetic cross-domain
    //    benchmark (the paper trains on SPIDER's training split).
    println!("training GAR on a small spider_sim split ...");
    let bench = spider_sim(SpiderSimConfig {
        train_dbs: 4,
        val_dbs: 1,
        queries_per_db: 30,
        seed: 7,
    });
    let config = GarConfig {
        prepare: PrepareConfig {
            gen_size: 600,
            ..PrepareConfig::default()
        },
        train_gen_size: 300,
        ..GarConfig::default()
    };
    let (gar, report) = GarSystem::train(&bench.dbs, &bench.train, config);
    println!(
        "  trained: {} retrieval triples, {} rank lists",
        report.retrieval_triples, report.rerank_lists
    );

    // 3. Sample SQL queries describing how users query this database.
    let samples: Vec<_> = [
        "SELECT employee.name FROM employee JOIN evaluation \
         ON employee.employee_id = evaluation.employee_id \
         ORDER BY evaluation.bonus DESC LIMIT 1",
        "SELECT employee.age FROM employee WHERE employee.name = 'alice'",
        "SELECT employee.name FROM employee WHERE employee.age > 30",
        "SELECT COUNT(*) FROM evaluation GROUP BY evaluation.employee_id",
    ]
    .iter()
    .map(|s| parse(s).expect("sample parses"))
    .collect();

    // 4. Offline data preparation: generalize + render dialects + encode.
    let prepared = gar.prepare_with_samples(&db, &samples);
    println!(
        "  prepared {} candidate dialect expressions",
        prepared.entries.len()
    );

    // 5. Translate. The generalizer has recomposed the samples, so queries
    //    that never appeared verbatim (e.g. asking for the AGE of the
    //    employee with the highest bonus) are covered too.
    for nl in [
        "Find the name of the employee with the highest bonus",
        "Find the age of the employee with the highest bonus",
        "Show the name of the employee whose age is more than 30",
        "How many evaluations are there for each employee?",
    ] {
        let tr = gar.translate(&db, &prepared, nl);
        println!("\nNL : {nl}");
        match tr.top1() {
            Some(sql) => println!("SQL: {}", to_sql(sql)),
            None => println!("SQL: <no candidate>"),
        }
        if let Some(top) = tr.ranked.first() {
            println!("     (score {:.3}, pool of {})", top.score, prepared.entries.len());
        }
    }
}
