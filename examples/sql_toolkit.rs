//! Tour of the SQL substrate: parsing, normalization, masking, difficulty
//! classification, dialect rendering, compositional generalization, and
//! in-memory execution — no model training involved.
//!
//! ```sh
//! cargo run --example sql_toolkit
//! ```

use gar::dialect::DialectBuilder;
use gar::engine::{execute, Database, Datum};
use gar::generalize::{extract_components, Generalizer, GeneralizerConfig};
use gar::schema::{AnnotationSet, SchemaBuilder};
use gar::sql::{classify, exact_match, mask_values, parse, to_sql};

fn main() {
    let schema = SchemaBuilder::new("hr")
        .table("employee", |t| {
            t.col_int("employee_id")
                .col_text("name")
                .col_int("age")
                .pk(&["employee_id"])
        })
        .table("evaluation", |t| {
            t.col_int("employee_id")
                .col_int("year_awarded")
                .col_float("bonus")
                .pk(&["employee_id", "year_awarded"])
        })
        .fk("evaluation", "employee_id", "employee", "employee_id")
        .build();

    // Parsing resolves aliases; printing is canonical.
    let gold = parse(
        "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 \
         ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
    )
    .expect("parses");
    println!("canonical : {}", to_sql(&gold));
    println!("difficulty: {}", classify(&gold));
    println!("masked    : {}", to_sql(&mask_values(&gold)));

    // Exact set match ignores cosmetic differences.
    let variant = parse(
        "SELECT employee.name FROM employee JOIN evaluation \
         ON evaluation.employee_id = employee.employee_id \
         ORDER BY evaluation.bonus DESC LIMIT 1",
    )
    .expect("parses");
    println!("set match : {}", exact_match(&gold, &variant));

    // The seven component types (Definition 1).
    println!("\ncomponents:");
    for c in extract_components(&gold) {
        println!("  {:<8} {}", c.component_type().to_string(), c.render());
    }

    // Dialect rendering (Section III-B) — note the compound-key-aware
    // "one bonus" phrasing.
    let ann = AnnotationSet::empty();
    let dialect = DialectBuilder::new(&schema, &ann);
    println!("\ndialect   : {}", dialect.render(&gold));

    // Compositional generalization (Algorithm 1).
    let samples = vec![
        gold.clone(),
        parse("SELECT employee.age FROM employee WHERE employee.name = 'bob'").unwrap(),
        parse("SELECT COUNT(*) FROM evaluation GROUP BY evaluation.employee_id").unwrap(),
    ];
    let out = Generalizer::new(
        &schema,
        GeneralizerConfig {
            target_size: 60,
            ..GeneralizerConfig::default()
        },
    )
    .generalize(&samples);
    println!(
        "\ngeneralized {} component-similar queries from {} samples, e.g.:",
        out.queries.len(),
        out.sample_count
    );
    for q in out.generated().iter().take(4) {
        println!("  {}", to_sql(q));
    }

    // Execution on in-memory data (the execution-accuracy substrate).
    let mut db = Database::empty(schema);
    for (id, name, age) in [(1, "alice", 34), (2, "bob", 28)] {
        db.insert(
            "employee",
            vec![Datum::Int(id), Datum::from(name), Datum::Int(age)],
        );
    }
    for (eid, year, bonus) in [(1, 2020, 500.0), (2, 2021, 2000.0)] {
        db.insert(
            "evaluation",
            vec![Datum::Int(eid), Datum::Int(year), Datum::Float(bonus)],
        );
    }
    let rs = execute(&db, &gold).expect("executes");
    println!("\nexecution : {:?}", rs.rows);
}
