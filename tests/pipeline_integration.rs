//! Cross-crate integration tests: the full generate-and-rank pipeline over
//! the benchmark simulators, exercising every subsystem together.

use gar::benchmarks::{qben_sim, spider_sim, QbenSimConfig, SpiderSimConfig};
use gar::core::{GarConfig, GarSystem, PrepareConfig};
use gar::ltr::{FeatureConfig, RerankConfig, RetrievalConfig};
use gar::sql::{exact_match, Query};

fn small_config() -> GarConfig {
    GarConfig {
        prepare: PrepareConfig {
            gen_size: 700,
            ..PrepareConfig::default()
        },
        train_gen_size: 300,
        k: 60,
        retrieval: RetrievalConfig {
            features: FeatureConfig::default(),
            hidden: 96,
            embed: 48,
            epochs: 6,
            ..RetrievalConfig::default()
        },
        rerank: RerankConfig {
            embed: 48,
            hidden: 64,
            epochs: 10,
            ..RerankConfig::default()
        },
        ..GarConfig::default()
    }
}

fn small_bench() -> gar::benchmarks::Benchmark {
    spider_sim(SpiderSimConfig {
        train_dbs: 8,
        val_dbs: 1,
        queries_per_db: 40,
        seed: 32,
    })
}

fn accuracy(gar: &GarSystem, bench: &gar::benchmarks::Benchmark) -> (usize, usize) {
    let db_name = bench.dev[0].db.clone();
    let db = bench.db(&db_name).expect("dev db");
    let gold: Vec<Query> = bench
        .dev
        .iter()
        .filter(|e| e.db == db_name)
        .map(|e| e.sql.clone())
        .collect();
    let prepared = gar.prepare_eval_db(db, &gold);
    let mut correct = 0;
    let mut total = 0;
    for ex in bench.dev.iter().filter(|e| e.db == db_name) {
        total += 1;
        let tr = gar.translate(db, &prepared, &ex.nl);
        if tr.top1().map(|t| exact_match(t, &ex.sql)).unwrap_or(false) {
            correct += 1;
        }
    }
    (correct, total)
}

#[test]
fn trained_gar_clears_forty_percent_on_held_out_db() {
    let bench = small_bench();
    let (gar, report) = GarSystem::train(&bench.dbs, &bench.train, small_config());
    assert!(report.retrieval_triples > 100);
    assert!(!report.retrieval_losses.is_empty());
    let (correct, total) = accuracy(&gar, &bench);
    // Measured top-1 exact-match across 9 (bench seed × model seed)
    // combinations is 52–70%; a 40% floor keeps a ≥5-case margin against
    // RNG-stream differences between build environments.
    assert!(
        correct * 5 >= total * 2,
        "only {correct}/{total} on held-out database (floor 40%)"
    );
}

#[test]
fn rerank_ablation_does_not_beat_full_pipeline() {
    let bench = small_bench();
    let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, small_config());
    let (full, total) = accuracy(&gar, &bench);
    let mut no_rerank = gar.clone();
    no_rerank.config.use_rerank = false;
    let (ablated, _) = accuracy(&no_rerank, &bench);
    // The re-ranker must not hurt; in practice it helps substantially
    // (Table 8). Allow equality for tiny splits.
    assert!(
        full + 2 >= ablated,
        "full {full} vs retrieval-only {ablated} of {total}"
    );
}

#[test]
fn gar_j_annotations_help_on_dual_role_joins() {
    let bench = small_bench();
    let (gar, _) = GarSystem::train(&bench.dbs, &bench.train, small_config());
    let qben = qben_sim(QbenSimConfig {
        samples: 80,
        test: 60,
        seed: 5,
    });

    let mut garj = gar.clone();
    garj.config.prepare.use_annotations = true;

    let mut plain_ok = 0usize;
    let mut ann_ok = 0usize;
    let mut total = 0usize;
    for db in &qben.dbs {
        let samples: Vec<Query> = qben
            .samples
            .iter()
            .filter(|e| e.db == db.schema.name)
            .map(|e| e.sql.clone())
            .collect();
        if samples.is_empty() {
            continue;
        }
        let plain = gar.prepare_with_samples(db, &samples);
        let annotated = garj.prepare_with_samples(db, &samples);
        for ex in qben.test.iter().filter(|e| e.db == db.schema.name) {
            total += 1;
            let p = gar.translate(db, &plain, &ex.nl);
            let a = garj.translate(db, &annotated, &ex.nl);
            plain_ok += usize::from(
                p.top1().map(|t| exact_match(t, &ex.sql)).unwrap_or(false),
            );
            ann_ok += usize::from(
                a.top1().map(|t| exact_match(t, &ex.sql)).unwrap_or(false),
            );
        }
    }
    assert!(total >= 40, "need a real test set, got {total}");
    // Dual-role joins are unreachable without annotations, so the gap is
    // structural (measured 10 vs 40 of 60), not a seed artifact.
    assert!(
        ann_ok > plain_ok,
        "annotations must help: GAR {plain_ok} vs GAR-J {ann_ok} of {total}"
    );
    assert!(
        ann_ok * 5 >= total * 2,
        "GAR-J only {ann_ok}/{total} on dual-role joins (floor 40%)"
    );
}

#[test]
fn training_is_deterministic() {
    let bench = small_bench();
    let (a, _) = GarSystem::train(&bench.dbs, &bench.train, small_config());
    let (b, _) = GarSystem::train(&bench.dbs, &bench.train, small_config());
    let probe = "Find the name of the student with the highest gpa";
    assert_eq!(a.retrieval.encode(probe), b.retrieval.encode(probe));
}
