//! Substrate-level integration: the SQL front-end, schema resolver,
//! generalizer, dialect builder, NL generator, engine and metrics agree
//! with each other on generated benchmark data.

use gar::benchmarks::{
    execution_match, generate_db, generate_queries, mt_teql_sim, spider_sim, utterance_for,
    MtTeqlConfig, SpiderSimConfig,
};
use gar::dialect::DialectBuilder;
use gar::generalize::{Generalizer, GeneralizerConfig, JoinCatalog};
use gar::schema::{resolve_query, AnnotationSet};
use gar::sql::{exact_match, parse, to_sql};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_generated_query_roundtrips_resolves_renders_and_executes() {
    let mut rng = StdRng::seed_from_u64(42);
    for theme in gar::benchmarks::vocab::THEMES.iter().take(4) {
        let db = generate_db(theme, 0, &mut rng);
        let queries = generate_queries(&db, 60, &mut rng);
        let ann = AnnotationSet::empty();
        let builder = DialectBuilder::new(&db.schema, &ann);
        for q in &queries {
            // Round-trip through the printer/parser.
            let sql = to_sql(q);
            let back = parse(&sql).unwrap_or_else(|e| panic!("{e}: {sql}"));
            assert!(exact_match(q, &back), "{sql}");
            // Resolves against its schema.
            assert!(resolve_query(&db.schema, q).is_ok(), "{sql}");
            // Renders to a non-empty dialect.
            assert!(!builder.render(q).is_empty());
            // Executes on the populated database.
            assert!(gar::engine::execute(&db.database, q).is_ok(), "{sql}");
            // Self-comparison passes the execution-accuracy metric.
            assert!(execution_match(&db.database, q, q), "{sql}");
            // Produces an utterance.
            assert!(!utterance_for(&db, q, 1, 2).is_empty());
        }
    }
}

#[test]
fn generalized_pool_stays_inside_sample_join_paths_and_schema() {
    let mut rng = StdRng::seed_from_u64(43);
    let db = generate_db(&gar::benchmarks::vocab::THEMES[5], 0, &mut rng);
    let samples = generate_queries(&db, 40, &mut rng);
    let out = Generalizer::new(
        &db.schema,
        GeneralizerConfig {
            target_size: 800,
            ..GeneralizerConfig::default()
        },
    )
    .generalize(&samples);
    assert!(out.queries.len() > samples.len(), "generalizer must expand");
    let catalog = JoinCatalog::from_samples(out.queries[..out.sample_count].iter());
    for q in &out.queries {
        assert!(resolve_query(&db.schema, q).is_ok(), "{}", to_sql(q));
        assert!(catalog.check_query(q), "join rule violated: {}", to_sql(q));
    }
}

#[test]
fn spider_sim_protocol_invariants() {
    let bench = spider_sim(SpiderSimConfig {
        train_dbs: 3,
        val_dbs: 2,
        queries_per_db: 25,
        seed: 44,
    });
    // DB-disjoint train/dev.
    let train_dbs: std::collections::HashSet<_> =
        bench.train.iter().map(|e| e.db.clone()).collect();
    let dev_dbs: std::collections::HashSet<_> =
        bench.dev.iter().map(|e| e.db.clone()).collect();
    assert!(train_dbs.is_disjoint(&dev_dbs));
    // Every example's SQL executes on its database.
    for ex in bench.train.iter().chain(&bench.dev) {
        let db = bench.db(&ex.db).expect("db exists");
        assert!(gar::engine::execute(&db.database, &ex.sql).is_ok());
        assert!(!ex.nl.to_lowercase().contains("select"));
    }
}

#[test]
fn mt_teql_transformations_preserve_executability() {
    let spider = spider_sim(SpiderSimConfig {
        train_dbs: 2,
        val_dbs: 2,
        queries_per_db: 20,
        seed: 45,
    });
    let mt = mt_teql_sim(
        &spider,
        MtTeqlConfig {
            samples: 100,
            schema_variants: 2,
            seed: 46,
        },
    );
    assert_eq!(mt.test.len(), 100);
    for ex in &mt.test {
        let db = mt.db(&ex.db).unwrap_or_else(|| panic!("missing {}", ex.db));
        assert!(resolve_query(&db.schema, &ex.sql).is_ok());
        assert!(gar::engine::execute(&db.database, &ex.sql).is_ok());
    }
}

#[test]
fn baselines_translate_schema_valid_sql_or_abstain() {
    use gar::baselines::{all_baselines, Nl2SqlSystem};
    let bench = spider_sim(SpiderSimConfig {
        train_dbs: 1,
        val_dbs: 1,
        queries_per_db: 30,
        seed: 47,
    });
    for sys in all_baselines() {
        for ex in &bench.dev {
            let db = bench.db(&ex.db).expect("db");
            if let Some(q) = sys.translate(db, &ex.nl) {
                assert!(
                    resolve_query(&db.schema, &q).is_ok(),
                    "{} emitted invalid SQL {} for {}",
                    sys.name(),
                    to_sql(&q),
                    ex.nl
                );
            }
        }
    }
}
